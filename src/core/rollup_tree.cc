#include "core/rollup_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace tara {

RollUpBound RollUpTree::RollUp(RuleId rule,
                               std::span<const WindowId> windows) const {
  const RuleSeries* series =
      rule < series_.size() ? series_[rule].get() : nullptr;

  RollUpAggregate agg;
  size_t i = 0;
  while (i < windows.size()) {
    // Maximal run of consecutive window ids [a, b]; the common all-windows
    // roll-up is a single run.
    const WindowId a = windows[i];
    size_t j = i + 1;
    while (j < windows.size() && windows[j] == windows[j - 1] + 1) ++j;
    const WindowId b = windows[j - 1];
    i = j;
    TARA_CHECK_LT(b, window_count());

    const uint64_t run_size =
        window_size_prefix_[b + 1] - window_size_prefix_[a];
    const uint64_t run_slack =
        window_slack_prefix_[b + 1] - window_slack_prefix_[a];
    const uint32_t run_len = b - a + 1;
    agg.total += run_size;

    uint64_t present_size = 0;
    uint64_t present_slack = 0;
    uint32_t present_count = 0;
    if (series != nullptr) {
      const auto lo = std::lower_bound(series->windows.begin(),
                                       series->windows.end(), a);
      const auto hi =
          std::lower_bound(lo, series->windows.end(), b + 1);
      const size_t lo_i = static_cast<size_t>(lo - series->windows.begin());
      const size_t hi_i = static_cast<size_t>(hi - series->windows.begin());
      agg.known_rule += series->rule_prefix[hi_i] - series->rule_prefix[lo_i];
      agg.known_ant += series->ant_prefix[hi_i] - series->ant_prefix[lo_i];
      present_size = series->size_prefix[hi_i] - series->size_prefix[lo_i];
      present_slack = series->slack_prefix[hi_i] - series->slack_prefix[lo_i];
      present_count = static_cast<uint32_t>(hi_i - lo_i);
    }
    agg.missing_windows += run_len - present_count;
    agg.missing_size += run_size - present_size;
    agg.missing_slack += run_slack - present_slack;
  }
  return FinishRollUp(agg);
}

std::optional<ArchiveEntry> RollUpTree::EntryFor(RuleId rule,
                                                 WindowId window) const {
  if (rule >= series_.size() || series_[rule] == nullptr) return std::nullopt;
  const RuleSeries& series = *series_[rule];
  const auto it = std::lower_bound(series.windows.begin(),
                                   series.windows.end(), window);
  if (it == series.windows.end() || *it != window) return std::nullopt;
  const size_t i = static_cast<size_t>(it - series.windows.begin());
  ArchiveEntry entry;
  entry.window = window;
  entry.rule_count = series.rule_prefix[i + 1] - series.rule_prefix[i];
  entry.antecedent_count = series.ant_prefix[i + 1] - series.ant_prefix[i];
  return entry;
}

uint32_t RollUpTree::entry_count(RuleId rule) const {
  if (rule >= series_.size() || series_[rule] == nullptr) return 0;
  return static_cast<uint32_t>(series_[rule]->windows.size());
}

void RollUpTreeBuilder::BeginWindow(WindowId window, uint64_t size,
                                    uint64_t slack) {
  TARA_CHECK_EQ(window, window_size_prefix_.size() - 1)
      << "windows must be registered consecutively";
  window_size_prefix_.push_back(window_size_prefix_.back() + size);
  window_slack_prefix_.push_back(window_slack_prefix_.back() + slack);
}

void RollUpTreeBuilder::AddEntry(RuleId rule, uint64_t rule_count,
                                 uint64_t antecedent_count) {
  TARA_CHECK_GE(window_size_prefix_.size(), 2u) << "no window begun";
  const uint32_t window =
      static_cast<uint32_t>(window_size_prefix_.size() - 2);
  if (rule >= series_.size()) series_.resize(rule + 1);
  std::shared_ptr<RollUpTree::RuleSeries>& slot = series_[rule];
  if (slot == nullptr) {
    slot = std::make_shared<RollUpTree::RuleSeries>();
    slot->rule_prefix.push_back(0);
    slot->ant_prefix.push_back(0);
    slot->size_prefix.push_back(0);
    slot->slack_prefix.push_back(0);
  } else if (slot.use_count() > 1) {
    // A published snapshot still references this series: copy-on-write.
    // Refcounts only grow under the builder's commit lock, so observing 1
    // here proves exclusive ownership.
    slot = std::make_shared<RollUpTree::RuleSeries>(*slot);
  }
  TARA_CHECK(slot->windows.empty() || slot->windows.back() < window)
      << "entries must advance in time";
  const uint64_t size =
      window_size_prefix_[window + 1] - window_size_prefix_[window];
  const uint64_t slack =
      window_slack_prefix_[window + 1] - window_slack_prefix_[window];
  slot->windows.push_back(window);
  slot->rule_prefix.push_back(slot->rule_prefix.back() + rule_count);
  slot->ant_prefix.push_back(slot->ant_prefix.back() + antecedent_count);
  slot->size_prefix.push_back(slot->size_prefix.back() + size);
  slot->slack_prefix.push_back(slot->slack_prefix.back() + slack);
}

std::shared_ptr<const RollUpTree> RollUpTreeBuilder::Snapshot() const {
  auto tree = std::shared_ptr<RollUpTree>(new RollUpTree());
  tree->series_.assign(series_.begin(), series_.end());
  tree->window_size_prefix_ = window_size_prefix_;
  tree->window_slack_prefix_ = window_slack_prefix_;
  return tree;
}

void RollUpTreeBuilder::Reset() {
  series_.clear();
  window_size_prefix_.assign(1, 0);
  window_slack_prefix_.assign(1, 0);
}

}  // namespace tara
