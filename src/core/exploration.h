#ifndef TARA_CORE_EXPLORATION_H_
#define TARA_CORE_EXPLORATION_H_

#include <cstdint>
#include <vector>

#include "core/periodicity.h"
#include "core/tara_engine.h"
#include "core/trajectory.h"

namespace tara {

/// One rule with its full evolving-behavior profile.
struct RuleInsight {
  RuleId rule = 0;
  TrajectoryMeasures measures;
  PeriodicityResult periodicity;
  /// Support gained from the first half of the horizon to the second
  /// (absence counts as zero support): positive = emerging, negative =
  /// fading.
  double emergence = 0.0;
};

/// High-level "rule-centric panorama" operations over a built engine — the
/// analyst-facing queries of Section 2.1.2's fourth limitation: the most
/// stable rules, the most significant periodic rules, the emerging and
/// fading ones. All operations take a parameter setting and the window
/// horizon, collect the qualifying rules (valid in at least one horizon
/// window), profile their trajectories, and rank.
///
/// The service shares the engine's error contract: an invalid request
/// (threshold below the floor, empty or mismatched horizon) surfaces as
/// the engine's QueryError instead of aborting.
class ExplorationService {
 public:
  /// `engine` must outlive the service.
  explicit ExplorationService(const TaraEngine* engine) : engine_(engine) {}

  /// Profiles every rule valid (under `setting`) in at least one window of
  /// `horizon`.
  Expected<std::vector<RuleInsight>, QueryError> ProfileRules(
      const WindowSet& horizon, const ParameterSetting& setting) const;

  /// Top-k rules by full coverage then stability.
  Expected<std::vector<RuleInsight>, QueryError> TopStable(
      const WindowSet& horizon, const ParameterSetting& setting,
      size_t k) const;

  /// Top-k rules by emergence (most positive support trend).
  Expected<std::vector<RuleInsight>, QueryError> TopEmerging(
      const WindowSet& horizon, const ParameterSetting& setting,
      size_t k) const;

  /// Top-k rules by negative emergence (fading).
  Expected<std::vector<RuleInsight>, QueryError> TopFading(
      const WindowSet& horizon, const ParameterSetting& setting,
      size_t k) const;

  /// Top-k periodic rules (strongest cycle, then shorter period).
  Expected<std::vector<RuleInsight>, QueryError> TopPeriodic(
      const WindowSet& horizon, const ParameterSetting& setting, size_t k,
      uint32_t max_period) const;

 private:
  const TaraEngine* engine_;
};

}  // namespace tara

#endif  // TARA_CORE_EXPLORATION_H_
