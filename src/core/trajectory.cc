#include "core/trajectory.h"

#include <algorithm>
#include <cmath>

namespace tara {
namespace {

void FillPoints(const TarArchive& archive,
                std::span<const ArchiveEntry> series,
                std::span<const WindowId> windows, TrajectoryPoint* out) {
  for (size_t i = 0; i < windows.size(); ++i) {
    const WindowId w = windows[i];
    TrajectoryPoint point;
    point.window = w;
    // The series is window-ordered by construction; the request order is
    // arbitrary, so each lookup is an independent binary search.
    const auto it = std::lower_bound(
        series.begin(), series.end(), w,
        [](const ArchiveEntry& e, WindowId target) {
          return e.window < target;
        });
    if (it != series.end() && it->window == w) {
      point.present = true;
      const uint64_t total = archive.window_size(w);
      point.support = total == 0 ? 0.0
                                 : static_cast<double>(it->rule_count) /
                                       static_cast<double>(total);
      point.confidence = it->antecedent_count == 0
                             ? 0.0
                             : static_cast<double>(it->rule_count) /
                                   static_cast<double>(it->antecedent_count);
    }
    out[i] = point;
  }
}

}  // namespace

std::span<const TrajectoryPoint> BuildTrajectoryInto(
    const TarArchive& archive, RuleId rule, std::span<const WindowId> windows,
    DecodeArena& arena) {
  const std::span<const ArchiveEntry> series = archive.DecodeInto(rule, arena);
  std::span<TrajectoryPoint> out =
      arena.AllocSpan<TrajectoryPoint>(windows.size());
  FillPoints(archive, series, windows, out.data());
  return out;
}

Trajectory BuildTrajectory(const TarArchive& archive, RuleId rule,
                           std::span<const WindowId> windows,
                           DecodeArena* scratch) {
  DecodeArena local;
  DecodeArena& arena = scratch != nullptr ? *scratch : local;
  const std::span<const ArchiveEntry> series = archive.DecodeInto(rule, arena);
  Trajectory trajectory(windows.size());
  FillPoints(archive, series, windows, trajectory.data());
  return trajectory;
}

TrajectoryMeasures ComputeMeasures(
    std::span<const TrajectoryPoint> trajectory) {
  TrajectoryMeasures m;
  if (trajectory.empty()) return m;

  size_t present = 0;
  double support_sum = 0, confidence_sum = 0;
  for (const TrajectoryPoint& p : trajectory) {
    if (!p.present) continue;
    ++present;
    support_sum += p.support;
    confidence_sum += p.confidence;
  }
  m.coverage = static_cast<double>(present) /
               static_cast<double>(trajectory.size());
  if (present == 0) return m;

  m.mean_support = support_sum / present;
  m.mean_confidence = confidence_sum / present;

  double support_var = 0, confidence_var = 0;
  for (const TrajectoryPoint& p : trajectory) {
    if (!p.present) continue;
    support_var += (p.support - m.mean_support) * (p.support - m.mean_support);
    confidence_var += (p.confidence - m.mean_confidence) *
                      (p.confidence - m.mean_confidence);
  }
  m.support_stddev = std::sqrt(support_var / present);
  m.confidence_stddev = std::sqrt(confidence_var / present);

  // Stability: mean absolute consecutive change of support, normalized by
  // the mean support (absence counts as zero support), inverted to [0, 1].
  double change_sum = 0;
  size_t steps = 0;
  for (size_t i = 1; i < trajectory.size(); ++i) {
    const double prev = trajectory[i - 1].present ? trajectory[i - 1].support
                                                  : 0.0;
    const double curr = trajectory[i].present ? trajectory[i].support : 0.0;
    change_sum += std::fabs(curr - prev);
    ++steps;
  }
  if (steps == 0 || m.mean_support <= 0) {
    m.stability = 1.0;
  } else {
    const double normalized = (change_sum / steps) / m.mean_support;
    m.stability = std::max(0.0, 1.0 - normalized);
  }
  return m;
}

}  // namespace tara
