#ifndef TARA_CORE_DECODE_KERNELS_H_
#define TARA_CORE_DECODE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/arena.h"
#include "common/cpu_features.h"
#include "core/tar_archive.h"

namespace tara::decode {

/// Typed outcome of decoding one TAR Archive rule stream. Kernels never
/// crash on malformed bytes; every way a stream can be wrong maps to a
/// status, and all kernels are required to agree on it (the differential
/// tests pin this).
enum class Status : uint8_t {
  kOk = 0,
  /// Stream ends in the middle of a varint.
  kTruncated,
  /// A varint continues past the 10-byte / 64-bit limit.
  kOverlong,
  /// Stream ends cleanly between varints but the value count is not a
  /// multiple of 3 (window, rule delta, antecedent delta).
  kDanglingValues,
  /// Caller-provided output or scratch span too small; cannot happen when
  /// sized with MaxEntriesForStream / MaxValuesForStream.
  kCapacityExceeded,
};

const char* StatusName(Status status);

struct DecodeResult {
  Status status = Status::kOk;
  /// Entries fully reconstructed before the stream ended or went bad.
  size_t entries = 0;
};

/// Upper bound on entries a well-formed stream of `stream_bytes` can hold:
/// every entry is three varints of at least one byte each.
inline size_t MaxEntriesForStream(size_t stream_bytes) {
  return stream_bytes / 3;
}

/// Upper bound on individual varint values in the stream (one per byte);
/// sizes the u64 scratch the two-phase SIMD kernels split into.
inline size_t MaxValuesForStream(size_t stream_bytes) {
  return stream_bytes;
}

/// One decode implementation. `decode` parses `size` bytes of a rule
/// stream into `out` (capacity `out_capacity` entries). Kernels with
/// `needs_scratch` split varints into `scratch` (capacity
/// `scratch_capacity` u64s) before reconstructing; pass
/// MaxValuesForStream-sized scratch, or any span for scalar.
struct DecodeKernel {
  const char* name;
  bool needs_scratch;
  DecodeResult (*decode)(const uint8_t* data, size_t size, ArchiveEntry* out,
                         size_t out_capacity, uint64_t* scratch,
                         size_t scratch_capacity);
};

/// The portable byte-at-a-time reference every SIMD variant must match
/// byte-for-byte. Always available.
const DecodeKernel& ScalarDecodeKernel();

/// Every kernel runnable on this host (scalar first), regardless of what
/// dispatch would pick — the differential oracle iterates this.
std::span<const DecodeKernel> SupportedDecodeKernels();

/// Pure dispatch: picks the widest kernel the given features allow, or
/// scalar when `force_scalar` is set. Exposed so tests can exercise every
/// dispatch decision in-process.
const DecodeKernel& DispatchDecodeKernel(const CpuFeatures& features,
                                         bool force_scalar);

/// Cached process-wide dispatch over the real CPUID probe and the
/// TARA_FORCE_SCALAR override.
const DecodeKernel& ActiveDecodeKernel();

/// Checked decode of an untrusted byte stream (fuzz inputs, on-disk bytes)
/// with the active kernel. Entries live in `arena` until its next Reset().
/// On error, `entries` still holds the valid prefix decoded before the
/// stream went bad.
struct CheckedDecode {
  Status status = Status::kOk;
  std::span<const ArchiveEntry> entries;
};
CheckedDecode DecodeStreamChecked(std::span<const uint8_t> bytes,
                                  DecodeArena& arena);
/// Same, with an explicit kernel (the fuzz oracle runs every supported
/// kernel and asserts agreement).
CheckedDecode DecodeStreamCheckedWith(const DecodeKernel& kernel,
                                      std::span<const uint8_t> bytes,
                                      DecodeArena& arena);

}  // namespace tara::decode

#endif  // TARA_CORE_DECODE_KERNELS_H_
