#ifndef TARA_CORE_KB_OPEN_H_
#define TARA_CORE_KB_OPEN_H_

#include <cstdint>
#include <string>

#include "common/expected.h"
#include "core/load_error.h"
#include "core/tara_engine.h"
#include "core/wal.h"

namespace tara {

/// The unified knowledge-base entrypoint. One call subsumes what used to
/// be three (LoadKnowledgeBaseDir, the TARAKB3 loaders, and
/// RecoverKnowledgeBase): it detects the on-disk format, optionally
/// verifies it, optionally replays a write-ahead log on top, and returns
/// a ready engine. The legacy signatures remain for one release as thin
/// deprecated shims over this function.

/// How segment payloads reach memory.
enum class OpenMode {
  /// Decode every window before returning — open cost O(total bytes),
  /// queries never touch the disk format again. The only mode TARAKB2
  /// directories support (requesting kMapped on one falls back to eager).
  kEager,
  /// Memory-map the TARAKB3 block files and decode windows on first
  /// access — open cost O(blocks), independent of window count; no
  /// segment payload byte is read at open. Queries materialize exactly
  /// the window prefix they need. Corruption discovered during a lazy
  /// decode surfaces as QueryError::Code::kCorruptStorage on the query
  /// that hit it (open with verify = kHashes to fail at open instead).
  kMapped,
};

/// How much of the on-disk state is checked at open.
enum class OpenVerify {
  /// Structural validation only (manifests are always fully validated).
  /// Eager loads still verify every segment checksum as they decode;
  /// mapped opens defer payload checks to first access.
  kNone,
  /// Additionally verify every block/segment checksum at open — for
  /// mapped opens this reads all payload bytes (block-parallel when
  /// parallelism > 1), trading the O(1) open for fail-fast integrity.
  kHashes,
};

struct OpenOptions {
  /// Directory holding the knowledge base — TARAKB3 (blocks.tarakb3)
  /// when present, TARAKB2 (manifest.tarakb) otherwise.
  std::string kb_dir;

  OpenMode mode = OpenMode::kEager;
  OpenVerify verify = OpenVerify::kNone;

  /// When non-empty, recover-on-open: after loading the checkpoint in
  /// `kb_dir` (or starting empty from the WAL header's options when no
  /// checkpoint exists), the log's tail is replayed on top and left
  /// attached so ingestion can continue. Replay requires the full
  /// catalog, so a mapped open with a wal_dir materializes every window
  /// before returning.
  std::string wal_dir;

  /// Becomes the engine's Options::metrics (runtime knob, never
  /// serialized state).
  obs::MetricsRegistry* metrics = nullptr;

  /// Engine parallelism (Options::parallelism); also fans hash
  /// verification and eager TARAKB3 segment parsing across a pool.
  /// 0 = hardware concurrency.
  uint32_t parallelism = 1;

  /// Engine query cache size (Options::query_cache_bytes).
  uint64_t query_cache_bytes = 0;

  /// When non-null and wal_dir is set, receives the replay outcome.
  WalReplayStats* replay_stats = nullptr;
};

/// Opens the knowledge base described by `options`. Every failure —
/// missing or corrupt files, format mismatches, WAL damage — is a typed
/// LoadError, never an abort.
Expected<TaraEngine, LoadError> OpenKnowledgeBase(const OpenOptions& options);

}  // namespace tara

#endif  // TARA_CORE_KB_OPEN_H_
