#ifndef TARA_CORE_WAL_H_
#define TARA_CORE_WAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.h"
#include "core/kb_snapshot.h"
#include "core/load_error.h"
#include "obs/metrics.h"

namespace tara {

/// Write-ahead log for live window ingestion (file format TARAWAL1).
///
/// One file, `<dir>/wal.tarawal`:
///
///   header:  "TARAWAL1" magic, then the serialized KbOptions subset
///            (support floor F64, confidence floor F64, itemset cap
///            varint, content-index flag varint) — enough to reject a
///            mismatched engine and to reconstruct one from the log
///            alone.
///   records: u32 payload length (LE) + u64 payload checksum (LE) +
///            payload. The payload is the window's transaction count
///            (varint) followed by its TARAKB2 segment blob — the same
///            bytes `window-NNNNNN.seg` would hold, so the WAL reuses
///            the segment codec end to end.
///
/// Durability contract: WalWriter::Append returns only after the record
/// is fdatasync'd, so an engine that logs each committed window before
/// acknowledging it never loses an acknowledged window. A torn tail
/// (crash mid-append) is detected by the length/checksum pair and
/// truncated away on the next open; everything before it replays.
/// After the windows land durably in a knowledge-base directory
/// (AppendKnowledgeBaseDir), Truncate() resets the log to just its
/// header.

/// One logged window.
struct WalRecord {
  uint64_t total_transactions = 0;
  std::vector<uint8_t> segment_bytes;
};

/// Everything a scan of the log recovered.
struct WalContents {
  /// The construction options from the header (serialized subset only;
  /// runtime knobs take their defaults).
  KbOptions options;
  std::vector<WalRecord> records;
  /// File offset just past the last valid record; a writer reopening
  /// the log truncates to this before appending.
  uint64_t valid_bytes = 0;
  /// Bytes of torn tail past valid_bytes (0 for a clean log).
  uint64_t truncated_bytes = 0;
};

/// Outcome of replaying a log into an engine (KbBuilder::AttachWal).
struct WalReplayStats {
  uint64_t records_scanned = 0;   ///< valid records found in the log
  uint64_t records_replayed = 0;  ///< appended into the engine
  uint64_t records_skipped = 0;   ///< pre-checkpoint leftovers ignored
  uint64_t truncated_bytes = 0;   ///< torn tail discarded
};

/// Scans `<dir>/wal.tarawal`. A torn tail is expected damage and comes
/// back inside the value (valid_bytes / truncated_bytes); a missing
/// file, unreadable header, or option field outside the valid ranges is
/// a LoadError.
Expected<WalContents, LoadError> ReadWal(const std::string& dir);

/// True if `<dir>/wal.tarawal` exists.
bool WalExists(const std::string& dir);

/// Appender with fdatasync-before-return semantics. Move-only (owns the
/// file descriptor). Instruments, when `metrics` is a registry:
/// `tara.wal.records`, `tara.wal.bytes`, `tara.wal.fsyncs` counters.
class WalWriter {
 public:
  /// Opens (creating `dir` and the log as needed) for appending.
  /// A fresh log gets the header written and synced before Open
  /// returns; an existing log must carry a matching-options header and
  /// is truncated to `valid_bytes` (from a prior ReadWal) first —
  /// dropping the torn tail, never a valid record.
  static Expected<WalWriter, LoadError> Open(const std::string& dir,
                                             const KbOptions& options,
                                             uint64_t valid_bytes,
                                             obs::MetricsRegistry* metrics);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record and fdatasyncs it. When this returns nullopt the
  /// window is durable: a crash at any later instant replays it.
  std::optional<LoadError> Append(uint64_t total_transactions,
                                  const std::vector<uint8_t>& segment_bytes);

  /// Drops every record (the header stays), fdatasync'd. Call only after
  /// the logged windows are durable elsewhere — i.e. right after a
  /// successful AppendKnowledgeBaseDir checkpoint.
  std::optional<LoadError> Truncate();

  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, uint64_t header_bytes,
            obs::MetricsRegistry* metrics);

  std::optional<LoadError> Fsync();

  int fd_ = -1;
  std::string path_;
  uint64_t header_bytes_ = 0;
  obs::Counter* records_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
};

}  // namespace tara

#endif  // TARA_CORE_WAL_H_
