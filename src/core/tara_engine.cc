#include "core/tara_engine.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mining/fp_growth.h"
#include "mining/rule_generation.h"

namespace tara {
namespace {

/// Resolves Options::parallelism (0 = hardware concurrency) to a concrete
/// worker count.
uint32_t EffectiveParallelism(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMineWindow:
      return "mine_window";
    case QueryKind::kMineWindows:
      return "mine_windows";
    case QueryKind::kTrajectory:
      return "trajectory";
    case QueryKind::kCompare:
      return "compare";
    case QueryKind::kRegion:
      return "region";
    case QueryKind::kMeasures:
      return "measures";
    case QueryKind::kContent:
      return "content";
    case QueryKind::kContentView:
      return "content_view";
    case QueryKind::kRollUpRule:
      return "rollup_rule";
    case QueryKind::kRollUpMine:
      return "rollup_mine";
  }
  return "unknown";
}

std::optional<std::string> TaraEngine::Options::Validate() const {
  std::ostringstream error;
  if (!(min_support_floor > 0.0 && min_support_floor <= 1.0)) {
    error << "Options::min_support_floor must be in (0, 1] — windows are "
             "mined once at this floor and online queries may only tighten "
             "it — got "
          << min_support_floor;
    return error.str();
  }
  if (!(min_confidence_floor >= 0.0 && min_confidence_floor <= 1.0)) {
    error << "Options::min_confidence_floor must be in [0, 1] — got "
          << min_confidence_floor;
    return error.str();
  }
  if (max_itemset_size == 1) {
    error << "Options::max_itemset_size of 1 admits no rules (a rule needs "
             ">= 2 items); use 0 for unlimited or a cap >= 2";
    return error.str();
  }
  return std::nullopt;
}

TaraEngine::TaraEngine(const Options& options) : options_(options) {
  const std::optional<std::string> error = options_.Validate();
  TARA_CHECK(!error.has_value()) << *error;
  const uint32_t parallelism = EffectiveParallelism(options_.parallelism);
  if (parallelism > 1) pool_ = std::make_unique<ThreadPool>(parallelism);
  RegisterMetrics();
}

void TaraEngine::RegisterMetrics() {
  obs::MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const std::string name =
        std::string("tara.query.") +
        std::string(QueryKindName(static_cast<QueryKind>(k))) + ".latency_ns";
    metrics_.latency[k] = registry->GetHistogram(name);
  }
  metrics_.ok = registry->GetCounter("tara.query.ok");
  metrics_.rejected = registry->GetCounter("tara.query.rejected");
  metrics_.build_itemset_seconds =
      registry->GetGauge("tara.build.itemset_seconds");
  metrics_.build_rule_seconds = registry->GetGauge("tara.build.rule_seconds");
  metrics_.build_archive_seconds =
      registry->GetGauge("tara.build.archive_seconds");
  metrics_.build_index_seconds =
      registry->GetGauge("tara.build.index_seconds");
  metrics_.build_windows = registry->GetGauge("tara.build.windows");
  metrics_.build_rules = registry->GetGauge("tara.build.rules");
  metrics_.build_regions = registry->GetGauge("tara.build.regions");
  metrics_.archive_payload_bytes =
      registry->GetGauge("tara.archive.payload_bytes");
  metrics_.archive_entries = registry->GetGauge("tara.archive.entries");
  metrics_.index_bytes = registry->GetGauge("tara.index.bytes");
}

void TaraEngine::UpdateBuildMetrics() {
  if (options_.metrics == nullptr) return;
  double itemset = 0, rule = 0, archive = 0, index = 0;
  double regions = 0;
  for (const WindowBuildStats& s : stats_) {
    itemset += s.itemset_seconds;
    rule += s.rule_seconds;
    archive += s.archive_seconds;
    index += s.index_seconds;
    regions += static_cast<double>(s.region_count);
  }
  metrics_.build_itemset_seconds->Set(itemset);
  metrics_.build_rule_seconds->Set(rule);
  metrics_.build_archive_seconds->Set(archive);
  metrics_.build_index_seconds->Set(index);
  metrics_.build_windows->Set(static_cast<double>(windows_.size()));
  metrics_.build_rules->Set(static_cast<double>(catalog_.size()));
  metrics_.build_regions->Set(regions);
  metrics_.archive_payload_bytes->Set(
      static_cast<double>(archive_.payload_bytes()));
  metrics_.archive_entries->Set(static_cast<double>(archive_.entry_count()));
  metrics_.index_bytes->Set(static_cast<double>(IndexBytes()));
}

TaraEngine::MinedWindow TaraEngine::MineWindowSlice(
    const TransactionDatabase& db, size_t begin, size_t end,
    ThreadPool* intra_pool) const {
  MinedWindow mined;
  mined.total_transactions = end - begin;

  // (1) Frequent itemset generation at the floor support.
  Stopwatch timer;
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count =
      MinCountForSupport(options_.min_support_floor, mined.total_transactions);
  mine_options.max_size = options_.max_itemset_size;
  mined.floor_count = mine_options.min_count;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db, begin, end, mine_options);
  mined.itemset_seconds = timer.ElapsedSeconds();
  mined.itemset_count = frequent.size();

  // (2) Rule derivation at the floor confidence.
  timer.Restart();
  mined.rules =
      GenerateRules(frequent, options_.min_confidence_floor, intra_pool);
  mined.rule_seconds = timer.ElapsedSeconds();
  return mined;
}

std::vector<WindowIndex::Entry> TaraEngine::InternAndArchive(
    WindowId window, const std::vector<MinedRule>& rules) {
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const MinedRule& r : rules) {
    const RuleId id = catalog_.Intern(Rule{r.antecedent, r.consequent});
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  return entries;
}

WindowId TaraEngine::CommitWindow(MinedWindow mined) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  WindowBuildStats stats;
  stats.window = window;
  stats.itemset_seconds = mined.itemset_seconds;
  stats.rule_seconds = mined.rule_seconds;
  stats.itemset_count = mined.itemset_count;
  stats.rule_count = mined.rules.size();

  // (3) Archive append.
  Stopwatch timer;
  archive_.RegisterWindow(window, mined.total_transactions, mined.floor_count,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries =
      InternAndArchive(window, mined.rules);
  stats.archive_seconds = timer.ElapsedSeconds();

  // (4) EPS slice (stable region index) build.
  timer.Restart();
  windows_.emplace_back();
  windows_.back().Build(entries, mined.total_transactions,
                        options_.build_content_index, catalog_, pool_.get());
  stats.index_seconds = timer.ElapsedSeconds();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();

  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  UpdateBuildMetrics();
  return window;
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  return CommitWindow(MineWindowSlice(db, begin, end, pool_.get()));
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions,
    const std::vector<PrecomputedRule>& rules) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  const uint64_t floor =
      MinCountForSupport(options_.min_support_floor, total_transactions);
  archive_.RegisterWindow(window, total_transactions, floor,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const PrecomputedRule& r : rules) {
    const RuleId id = catalog_.Intern(r.rule);
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  windows_.emplace_back();
  windows_.back().Build(entries, total_transactions,
                        options_.build_content_index, catalog_, pool_.get());
  WindowBuildStats stats;
  stats.window = window;
  stats.rule_count = rules.size();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();
  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  UpdateBuildMetrics();
  return window;
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  const uint32_t n = data.window_count();
  ThreadPool* pool = pool_.get();
  if (pool == nullptr || n <= 1) {
    for (WindowId w = 0; w < n; ++w) {
      const WindowInfo& info = data.window(w);
      AppendWindow(data.database(), info.begin, info.end);
    }
    return;
  }

  // Parallel pipeline. Windows are independent by construction (the iPARAS
  // increment never revisits prior windows), so:
  //   stage 1 (fan-out):  mine itemsets + derive rules per window;
  //   stage 2 (serial):   intern rules + append archive counts, strictly
  //                       in window order — RuleIds and the archive byte
  //                       stream come out identical to a sequential build;
  //   stage 3 (fan-out):  build each committed window's EPS slice.
  const TransactionDatabase& db = data.database();
  const size_t base = windows_.size();
  windows_.resize(base + n);
  window_entries_.resize(base + n);
  stats_.resize(base + n);

  // Keep only a few windows of mined-but-uncommitted rules in memory.
  const uint32_t max_ahead = pool->size() + 2;
  std::deque<std::future<MinedWindow>> in_flight;
  WindowId next_to_mine = 0;
  const auto submit_next_mine = [&] {
    if (next_to_mine >= n) return;
    const WindowInfo info = data.window(next_to_mine);
    in_flight.push_back(pool->Submit([this, &db, info] {
      // Intra-window loops stay sequential here: the window fan-out
      // already keeps every worker busy.
      return MineWindowSlice(db, info.begin, info.end, nullptr);
    }));
    ++next_to_mine;
  };
  while (next_to_mine < n && next_to_mine < max_ahead) submit_next_mine();

  std::vector<std::future<void>> eps_builds;
  eps_builds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MinedWindow mined = in_flight.front().get();
    in_flight.pop_front();
    submit_next_mine();

    const WindowId window = static_cast<WindowId>(base + i);
    WindowBuildStats& stats = stats_[window];
    stats.window = window;
    stats.itemset_seconds = mined.itemset_seconds;
    stats.rule_seconds = mined.rule_seconds;
    stats.itemset_count = mined.itemset_count;
    stats.rule_count = mined.rules.size();

    Stopwatch timer;
    archive_.RegisterWindow(window, mined.total_transactions,
                            mined.floor_count,
                            options_.min_confidence_floor);
    window_entries_[window] = InternAndArchive(window, mined.rules);
    stats.archive_seconds = timer.ElapsedSeconds();

    // Stage 3 reads the catalog (content index only) while later windows
    // intern — safe: RuleCatalog readers lock shared against the writer.
    const uint64_t total = mined.total_transactions;
    eps_builds.push_back(pool->Submit([this, window, total] {
      Stopwatch index_timer;
      windows_[window].Build(window_entries_[window], total,
                             options_.build_content_index, catalog_, nullptr);
      WindowBuildStats& slot = stats_[window];
      slot.index_seconds = index_timer.ElapsedSeconds();
      slot.location_count = windows_[window].location_count();
      slot.region_count = windows_[window].region_count();
    }));
  }
  for (std::future<void>& f : eps_builds) f.get();
  // Gauges refresh after the fan-out joins: stage-3 workers write stats_
  // slots, so the totals are only stable here.
  UpdateBuildMetrics();
}

std::optional<QueryError> TaraEngine::ValidateSetting(
    const ParameterSetting& setting) const {
  if (setting.min_support + 1e-12 < options_.min_support_floor) {
    std::ostringstream message;
    message << "min_support " << setting.min_support
            << " is below the generation floor "
            << options_.min_support_floor
            << " — rules under the floor were never mined";
    return QueryError{QueryError::Code::kSupportBelowFloor, message.str()};
  }
  if (setting.min_confidence + 1e-12 < options_.min_confidence_floor) {
    std::ostringstream message;
    message << "min_confidence " << setting.min_confidence
            << " is below the generation floor "
            << options_.min_confidence_floor
            << " — rules under the floor were never derived";
    return QueryError{QueryError::Code::kConfidenceBelowFloor, message.str()};
  }
  return std::nullopt;
}

std::optional<QueryError> TaraEngine::ValidateWindow(WindowId w) const {
  if (w < windows_.size()) return std::nullopt;
  std::ostringstream message;
  message << "window " << w << " does not exist (engine has "
          << windows_.size() << " windows)";
  return QueryError{QueryError::Code::kBadWindow, message.str()};
}

std::optional<QueryError> TaraEngine::ValidateWindows(
    const WindowSet& windows) const {
  if (windows.empty()) {
    return QueryError{QueryError::Code::kEmptyWindowSet,
                      "the window set is empty — the operation needs at "
                      "least one window"};
  }
  if (windows.required_window_count() > windows_.size()) {
    std::ostringstream message;
    message << "WindowSet refers to window "
            << windows.required_window_count() - 1
            << " but this engine has only " << windows_.size()
            << " windows (set built for a different engine?)";
    return QueryError{QueryError::Code::kWindowSetMismatch, message.str()};
  }
  return std::nullopt;
}

std::optional<QueryError> TaraEngine::ValidateRule(RuleId rule) const {
  if (rule < catalog_.size()) return std::nullopt;
  std::ostringstream message;
  message << "rule " << rule << " was never interned (catalog has "
          << catalog_.size() << " rules)";
  return QueryError{QueryError::Code::kUnknownRule, message.str()};
}

QueryError TaraEngine::Reject(obs::QuerySpan* span, QueryError error) const {
  span->Cancel();
  if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
  return error;
}

void TaraEngine::CountOk() const {
  if (metrics_.ok != nullptr) metrics_.ok->Increment();
}

std::vector<RuleId> TaraEngine::CollectWindow(
    WindowId w, const ParameterSetting& setting) const {
  std::vector<RuleId> out;
  windows_[w].CollectRules(setting.min_support, setting.min_confidence, &out);
  return out;
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kMineWindow)]);
  if (auto error = ValidateWindow(w)) return Reject(&span, *std::move(error));
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  CountOk();
  return CollectWindow(w, setting);
}

std::vector<RuleId> TaraEngine::MineWindowsUnchecked(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  std::vector<RuleId> combined;
  bool first = true;
  for (WindowId w : windows) {
    std::vector<RuleId> rules = CollectWindow(w, setting);
    std::sort(rules.begin(), rules.end());
    if (first) {
      combined = std::move(rules);
      first = false;
      continue;
    }
    std::vector<RuleId> merged;
    if (mode == MatchMode::kSingle) {
      std::set_union(combined.begin(), combined.end(), rules.begin(),
                     rules.end(), std::back_inserter(merged));
    } else {
      std::set_intersection(combined.begin(), combined.end(), rules.begin(),
                            rules.end(), std::back_inserter(merged));
    }
    combined = std::move(merged);
  }
  return combined;
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kMineWindows)]);
  if (auto error = ValidateWindows(windows)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  CountOk();
  return MineWindowsUnchecked(windows, setting, mode);
}

Expected<TaraEngine::TrajectoryQueryResult, QueryError>
TaraEngine::TrajectoryQuery(WindowId anchor, const ParameterSetting& setting,
                            const WindowSet& horizon) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kTrajectory)]);
  if (auto error = ValidateWindow(anchor)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateWindows(horizon)) {
    return Reject(&span, *std::move(error));
  }
  TrajectoryQueryResult result;
  result.rules = CollectWindow(anchor, setting);
  result.trajectories.reserve(result.rules.size());
  for (RuleId rule : result.rules) {
    result.trajectories.push_back(
        BuildTrajectory(archive_, rule, horizon.ids()));
  }
  CountOk();
  return result;
}

Expected<TaraEngine::RulesetDiff, QueryError> TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  obs::QuerySpan span(metrics_.latency[static_cast<int>(QueryKind::kCompare)]);
  if (auto error = ValidateWindows(windows)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateSetting(first)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateSetting(second)) {
    return Reject(&span, *std::move(error));
  }
  const std::vector<RuleId> a = MineWindowsUnchecked(windows, first, mode);
  const std::vector<RuleId> b = MineWindowsUnchecked(windows, second, mode);
  RulesetDiff diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff.only_first));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(diff.only_second));
  CountOk();
  return diff;
}

Expected<RegionInfo, QueryError> TaraEngine::RecommendRegion(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span(metrics_.latency[static_cast<int>(QueryKind::kRegion)]);
  if (auto error = ValidateWindow(w)) return Reject(&span, *std::move(error));
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  CountOk();
  return windows_[w].Locate(setting.min_support, setting.min_confidence);
}

Expected<TrajectoryMeasures, QueryError> TaraEngine::RuleMeasures(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kMeasures)]);
  if (auto error = ValidateRule(rule)) return Reject(&span, *std::move(error));
  if (auto error = ValidateWindows(windows)) {
    return Reject(&span, *std::move(error));
  }
  CountOk();
  return ComputeMeasures(BuildTrajectory(archive_, rule, windows.ids()));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  obs::QuerySpan span(metrics_.latency[static_cast<int>(QueryKind::kContent)]);
  if (!options_.build_content_index) {
    return Reject(&span,
                  QueryError{QueryError::Code::kNoContentIndex,
                             "content queries need an engine built with "
                             "Options::build_content_index (the TARA-S "
                             "variant)"});
  }
  if (auto error = ValidateWindow(w)) return Reject(&span, *std::move(error));
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  std::vector<RuleId> out;
  windows_[w].ContentQuery(items, setting.min_support, setting.min_confidence,
                           &out);
  CountOk();
  return out;
}

Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
TaraEngine::ContentView(WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kContentView)]);
  if (auto error = ValidateWindow(w)) return Reject(&span, *std::move(error));
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  std::unordered_map<ItemId, std::vector<RuleId>> view;
  for (RuleId rule : CollectWindow(w, setting)) {
    const Rule& r = catalog_.rule(rule);
    for (ItemId item : r.antecedent) view[item].push_back(rule);
    for (ItemId item : r.consequent) view[item].push_back(rule);
  }
  for (auto& [item, rules] : view) std::sort(rules.begin(), rules.end());
  CountOk();
  return view;
}

Expected<RollUpBound, QueryError> TaraEngine::RollUpRule(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kRollUpRule)]);
  if (auto error = ValidateRule(rule)) return Reject(&span, *std::move(error));
  if (auto error = ValidateWindows(windows)) {
    return Reject(&span, *std::move(error));
  }
  CountOk();
  return archive_.RollUp(rule, windows.ids());
}

Expected<TaraEngine::RolledUpRules, QueryError> TaraEngine::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  obs::QuerySpan span(
      metrics_.latency[static_cast<int>(QueryKind::kRollUpMine)]);
  if (auto error = ValidateWindows(windows)) {
    return Reject(&span, *std::move(error));
  }
  if (auto error = ValidateSetting(setting)) {
    return Reject(&span, *std::move(error));
  }
  // Candidates: every rule present in at least one of the windows.
  std::vector<RuleId> candidates;
  for (WindowId w : windows) {
    for (const WindowIndex::Entry& e : window_entries_[w]) {
      candidates.push_back(e.rule);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  RolledUpRules result;
  for (RuleId rule : candidates) {
    const RollUpBound bound = archive_.RollUp(rule, windows.ids());
    const bool certain = bound.support_lo + 1e-12 >= setting.min_support &&
                         bound.confidence_lo + 1e-12 >= setting.min_confidence;
    const bool possible = bound.support_hi + 1e-12 >= setting.min_support &&
                          bound.confidence_hi + 1e-12 >= setting.min_confidence;
    if (certain) {
      result.certain.push_back(rule);
    } else if (possible) {
      result.possible.push_back(rule);
    }
  }
  CountOk();
  return result;
}

const WindowIndex& TaraEngine::window_index(WindowId w) const {
  TARA_CHECK_LT(w, windows_.size()) << "bad window id";
  return windows_[w];
}

const std::vector<WindowIndex::Entry>& TaraEngine::window_entries(
    WindowId w) const {
  TARA_CHECK_LT(w, window_entries_.size()) << "bad window id";
  return window_entries_[w];
}

size_t TaraEngine::IndexBytes() const {
  size_t bytes = 0;
  for (const WindowIndex& w : windows_) bytes += w.ApproximateBytes();
  return bytes;
}

}  // namespace tara
