#include "core/tara_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "core/kb_blocks.h"
#include "core/kb_storage.h"

namespace tara {

/// Everything a lazily mapped knowledge base needs: the mapping itself,
/// a cursor of how many windows are decoded, and the sticky failure
/// state. `materialized`/`done` are the lock-free fast path; the mutex
/// serializes actual decoding (and orders strictly before the builder's
/// commit mutex — materialization appends windows).
struct TaraEngine::LazyState {
  std::shared_ptr<const MappedKb> kb;
  std::mutex mutex;
  std::atomic<uint32_t> materialized{0};
  std::atomic<bool> done{false};
  /// Guarded by `mutex`. Once a decode fails, every later gate fails
  /// with the same message — a half-decoded tail must not silently
  /// shrink the knowledge base.
  bool failed = false;
  std::string failure;
};

TaraEngine::TaraEngine(const Options& options)
    : builder_(std::make_unique<KbBuilder>(options)) {
  RegisterMetrics(options.metrics);
  if (options.query_cache_bytes > 0) {
    cache_ = std::make_unique<QueryCache>(options.query_cache_bytes,
                                          options.metrics);
  }
  const uint32_t parallelism =
      options.parallelism == 0 ? std::thread::hardware_concurrency()
                               : options.parallelism;
  if (parallelism > 1) query_pool_ = std::make_unique<ThreadPool>(parallelism);
}

TaraEngine::~TaraEngine() = default;
TaraEngine::TaraEngine(TaraEngine&&) noexcept = default;
TaraEngine& TaraEngine::operator=(TaraEngine&&) noexcept = default;

void TaraEngine::RegisterMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const std::string name =
        std::string("tara.query.") +
        std::string(QueryKindName(static_cast<QueryKind>(k))) + ".latency_ns";
    metrics_.latency[k] = registry->GetHistogram(name);
  }
  metrics_.ok = registry->GetCounter("tara.query.ok");
  metrics_.rejected = registry->GetCounter("tara.query.rejected");
}

std::optional<LoadError> TaraEngine::AttachMappedKb(
    std::shared_ptr<const MappedKb> kb, bool eager) {
  TARA_CHECK(lazy_ == nullptr) << "AttachMappedKb called twice";
  TARA_CHECK(builder_->snapshot()->window_count() == 0)
      << "AttachMappedKb needs a freshly constructed, empty engine";
  lazy_ = std::make_unique<LazyState>();
  lazy_->kb = std::move(kb);
  if (lazy_->kb->window_count() == 0) lazy_->done.store(true);
  if (eager) {
    std::optional<LoadError> error;
    {
      std::lock_guard<std::mutex> lock(lazy_->mutex);
      error = MaterializeLocked(lazy_->kb->window_count());
    }
    if (error.has_value()) return error;
    lazy_.reset();  // fully decoded — drop the gates and the mapping
  }
  return std::nullopt;
}

bool TaraEngine::fully_materialized() const {
  return lazy_ == nullptr || lazy_->done.load(std::memory_order_acquire);
}

std::shared_ptr<const KnowledgeBaseSnapshot> TaraEngine::Snapshot() const {
  EnsureAllOrDie();
  return builder_->snapshot();
}

uint32_t TaraEngine::window_count() const {
  if (lazy_ != nullptr && !lazy_->done.load(std::memory_order_acquire)) {
    // The manifest's count: appends force full materialization first, so
    // while lazy decoding is still pending the manifest is the whole
    // knowledge base.
    return lazy_->kb->window_count();
  }
  return builder_->snapshot()->window_count();
}

std::optional<LoadError> TaraEngine::MaterializeLocked(uint32_t need) const {
  const MappedKb& kb = *lazy_->kb;
  const uint32_t total = kb.window_count();
  if (need > total) need = total;
  const uint32_t have = lazy_->materialized.load(std::memory_order_relaxed);
  if (have >= need) return std::nullopt;

  // Stage 1 — catalog-free: hash-check and structurally parse each
  // pending segment, fanned across the query pool. Workers touch only
  // their slot; the lazy mutex (held by the caller) is never taken here.
  const uint32_t count = need - have;
  std::vector<std::optional<Expected<ParsedWindowSegment, LoadError>>> parsed(
      count);
  const auto parse_one = [&](uint32_t i) {
    const SegmentView view = kb.segment(have + i);
    if (HashBytes(view.data, view.size) != view.row->segment_hash) {
      parsed[i] = Expected<ParsedWindowSegment, LoadError>(LoadError{
          LoadError::Code::kCorruptSegment,
          "checksum does not match the blocks manifest"});
      return;
    }
    parsed[i] = ParseWindowSegment(view.data, view.size);
  };
  if (query_pool_ != nullptr && count > 1) {
    query_pool_->ParallelFor(count, [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        parse_one(static_cast<uint32_t>(i));
      }
    });
  } else {
    for (uint32_t i = 0; i < count; ++i) parse_one(i);
  }

  // Stage 2 — window-ordered: resolve rule contents against the growing
  // catalog and append, cross-checking every manifest claim. Appending
  // per window keeps generations byte-identical to an eager load.
  for (uint32_t i = 0; i < count; ++i) {
    const WindowId w = have + i;
    const auto corrupt = [w](const std::string& what) {
      std::ostringstream message;
      message << "segment of window " << w << " is corrupt: " << what;
      return LoadError{LoadError::Code::kCorruptSegment, message.str()};
    };
    Expected<ParsedWindowSegment, LoadError>& slot = *parsed[i];
    if (!slot.has_value()) return corrupt(slot.error().message);
    const ParsedWindowSegment& p = slot.value();
    const KbBlockRow& row = *kb.segment(w).row;
    if (p.window != w) {
      return corrupt("segment belongs to a different window");
    }
    if (p.first_rule != builder_->catalog().size() ||
        p.first_rule + p.new_rules.size() != row.rule_watermark) {
      return corrupt("rule id range disagrees with the blocks manifest");
    }
    if (p.entries.size() != row.entry_count) {
      return corrupt("entry count disagrees with the blocks manifest");
    }
    auto entries = ResolveParsedSegment(p, builder_->catalog());
    if (!entries.has_value()) return corrupt(entries.error().message);
    builder_->AppendPrecomputedWindow(row.total_transactions,
                                      entries.value());
    if (builder_->catalog().size() != row.rule_watermark) {
      return corrupt(
          "re-interning the entries did not reproduce the manifest "
          "watermark (duplicate or out-of-order rule contents)");
    }
  }
  lazy_->materialized.store(need, std::memory_order_release);
  if (need == total) lazy_->done.store(true, std::memory_order_release);
  return std::nullopt;
}

std::optional<QueryError> TaraEngine::EnsureWindows(uint64_t required) const {
  if (lazy_ == nullptr || lazy_->done.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  // Clamp to the manifest: an out-of-range request materializes
  // everything, so the snapshot-side rejection is byte-identical to an
  // eager engine's.
  const uint32_t need = static_cast<uint32_t>(
      std::min<uint64_t>(required, lazy_->kb->window_count()));
  if (lazy_->materialized.load(std::memory_order_acquire) >= need) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(lazy_->mutex);
  if (lazy_->failed) {
    return QueryError{QueryError::Code::kCorruptStorage, lazy_->failure};
  }
  if (auto error = MaterializeLocked(need)) {
    lazy_->failed = true;
    lazy_->failure = error->message;
    return QueryError{QueryError::Code::kCorruptStorage,
                      std::move(error->message)};
  }
  return std::nullopt;
}

std::optional<QueryError> TaraEngine::EnsureRule(RuleId rule) const {
  if (lazy_ == nullptr || lazy_->done.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  const std::optional<WindowId> w = lazy_->kb->FirstWindowWithRule(rule);
  return EnsureWindows(w.has_value()
                           ? static_cast<uint64_t>(*w) + 1
                           : lazy_->kb->window_count());
}

std::optional<QueryError> TaraEngine::EnsureForRequest(
    const QueryRequest& request) const {
  if (lazy_ == nullptr || lazy_->done.load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  uint64_t required = 0;
  const auto windows_max = [&request]() {
    uint64_t max = 0;
    for (const WindowId id : request.windows) {
      max = std::max(max, static_cast<uint64_t>(id) + 1);
    }
    return max;
  };
  switch (request.kind) {
    case QueryKind::kMineWindow:
    case QueryKind::kRegion:
    case QueryKind::kContent:
    case QueryKind::kContentView:
      required = static_cast<uint64_t>(request.window) + 1;
      break;
    case QueryKind::kTrajectory:
      required =
          std::max(static_cast<uint64_t>(request.window) + 1, windows_max());
      break;
    case QueryKind::kMineWindows:
    case QueryKind::kCompare:
    case QueryKind::kRollUpMine:
      required = windows_max();
      break;
    case QueryKind::kMeasures:
    case QueryKind::kRollUpRule:
      if (auto gate = EnsureRule(request.rule)) return gate;
      required = windows_max();
      break;
  }
  return EnsureWindows(required);
}

void TaraEngine::EnsureAllOrDie() const {
  if (lazy_ == nullptr || lazy_->done.load(std::memory_order_acquire)) return;
  if (auto error = EnsureWindows(lazy_->kb->window_count())) {
    TARA_CHECK(false) << error->message
                      << " — open with OpenOptions::verify = kHashes to "
                         "detect this at open time instead";
  }
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  EnsureAllOrDie();
  return builder_->AppendWindow(db, begin, end);
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions, const std::vector<PrecomputedRule>& rules) {
  EnsureAllOrDie();
  return builder_->AppendPrecomputedWindow(total_transactions, rules);
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  EnsureAllOrDie();
  builder_->BuildAll(data);
}

Expected<WalReplayStats, LoadError> TaraEngine::AttachWal(
    const std::string& dir) {
  if (lazy_ != nullptr && !lazy_->done.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lazy_->mutex);
    if (lazy_->failed) {
      return LoadError{LoadError::Code::kCorruptSegment, lazy_->failure};
    }
    if (auto error = MaterializeLocked(lazy_->kb->window_count())) {
      lazy_->failed = true;
      lazy_->failure = error->message;
      return *std::move(error);
    }
  }
  return builder_->AttachWal(dir);
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindow);
  if (auto gate = EnsureWindows(static_cast<uint64_t>(w) + 1)) {
    return Gated<std::vector<RuleId>>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->MineWindow(w, setting));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindows);
  if (auto gate = EnsureWindows(windows.required_window_count())) {
    return Gated<std::vector<RuleId>>(&span, *std::move(gate));
  }
  return Finish(&span,
                builder_->snapshot()->MineWindows(windows, setting, mode));
}

Expected<TaraEngine::TrajectoryQueryResult, QueryError>
TaraEngine::TrajectoryQuery(WindowId anchor, const ParameterSetting& setting,
                            const WindowSet& horizon) const {
  obs::QuerySpan span = Span(QueryKind::kTrajectory);
  if (auto gate = EnsureWindows(
          std::max(static_cast<uint64_t>(anchor) + 1,
                   static_cast<uint64_t>(horizon.required_window_count())))) {
    return Gated<TrajectoryQueryResult>(&span, *std::move(gate));
  }
  return Finish(&span,
                builder_->snapshot()->TrajectoryQuery(anchor, setting,
                                                      horizon));
}

Expected<TaraEngine::RulesetDiff, QueryError> TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kCompare);
  if (auto gate = EnsureWindows(windows.required_window_count())) {
    return Gated<RulesetDiff>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->CompareSettings(first, second,
                                                             windows, mode));
}

Expected<RegionInfo, QueryError> TaraEngine::RecommendRegion(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRegion);
  if (auto gate = EnsureWindows(static_cast<uint64_t>(w) + 1)) {
    return Gated<RegionInfo>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->RecommendRegion(w, setting));
}

Expected<TrajectoryMeasures, QueryError> TaraEngine::RuleMeasures(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kMeasures);
  if (auto gate = EnsureRule(rule)) {
    return Gated<TrajectoryMeasures>(&span, *std::move(gate));
  }
  if (auto gate = EnsureWindows(windows.required_window_count())) {
    return Gated<TrajectoryMeasures>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->RuleMeasures(rule, windows));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContent);
  if (auto gate = EnsureWindows(static_cast<uint64_t>(w) + 1)) {
    return Gated<std::vector<RuleId>>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->ContentQuery(w, items, setting));
}

Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
TaraEngine::ContentView(WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContentView);
  if (auto gate = EnsureWindows(static_cast<uint64_t>(w) + 1)) {
    return Gated<std::unordered_map<ItemId, std::vector<RuleId>>>(
        &span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->ContentView(w, setting));
}

Expected<RollUpBound, QueryError> TaraEngine::RollUpRule(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpRule);
  if (auto gate = EnsureRule(rule)) {
    return Gated<RollUpBound>(&span, *std::move(gate));
  }
  if (auto gate = EnsureWindows(windows.required_window_count())) {
    return Gated<RollUpBound>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->RollUpRule(rule, windows));
}

Expected<TaraEngine::RolledUpRules, QueryError> TaraEngine::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpMine);
  if (auto gate = EnsureWindows(windows.required_window_count())) {
    return Gated<RolledUpRules>(&span, *std::move(gate));
  }
  return Finish(&span, builder_->snapshot()->MineRolledUp(windows, setting));
}

Expected<QueryResult, QueryError> TaraEngine::Execute(
    const QueryRequest& request) const {
  obs::QuerySpan span = Span(request.kind);
  if (auto gate = EnsureForRequest(request)) {
    return Gated<QueryResult>(&span, *std::move(gate));
  }
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
      builder_->snapshot();
  if (cache_ == nullptr) {
    return Finish(&span, ExecuteQuery(*snapshot, request));
  }
  const std::string key = EncodeQueryRequest(request);
  if (std::optional<std::string> hit =
          cache_->Get(snapshot->generation(), request.kind, key)) {
    if (std::optional<QueryResult> decoded =
            DecodeQueryResult(request.kind, *hit)) {
      return Finish(&span, Expected<QueryResult, QueryError>(
                               *std::move(decoded)));
    }
  }
  Expected<QueryResult, QueryError> result = ExecuteQuery(*snapshot, request);
  if (result.has_value()) {
    cache_->Put(snapshot->generation(), request.kind, key,
                EncodeQueryResult(request.kind, result.value()));
  }
  return Finish(&span, std::move(result));
}

std::vector<Expected<QueryResult, QueryError>> TaraEngine::ExecuteBatch(
    std::span<const QueryRequest> requests) const {
  // Gate every request BEFORE pinning the snapshot or fanning out: pool
  // workers must never materialize (they would need the lazy mutex).
  if (lazy_ != nullptr && !lazy_->done.load(std::memory_order_acquire)) {
    bool any_gate_failed = false;
    std::vector<std::optional<QueryError>> gates(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      gates[i] = EnsureForRequest(requests[i]);
      any_gate_failed = any_gate_failed || gates[i].has_value();
    }
    if (any_gate_failed) {
      // Corruption path: serve what still materializes, reject the rest.
      // Throughput is irrelevant here — fall back to per-request calls.
      std::vector<Expected<QueryResult, QueryError>> results;
      results.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        if (gates[i].has_value()) {
          if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
          results.push_back(*std::move(gates[i]));
        } else {
          results.push_back(Execute(requests[i]));
        }
      }
      return results;
    }
  }

  // One snapshot for the whole batch: every request — hit or miss — is
  // answered from the same generation.
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot =
      builder_->snapshot();
  if (cache_ == nullptr) {
    auto results = ExecuteQueryBatch(*snapshot, requests, query_pool_.get());
    for (const auto& result : results) {
      if (result.has_value()) {
        if (metrics_.ok != nullptr) metrics_.ok->Increment();
      } else {
        if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
      }
    }
    return results;
  }

  // Dedup by canonical request bytes, then partition into cache hits and
  // misses; only the misses execute (in parallel when a pool exists).
  const uint64_t generation = snapshot->generation();
  std::unordered_map<std::string, size_t> unique_index;
  std::vector<const QueryRequest*> unique_requests;
  std::vector<std::string> unique_keys;
  std::vector<size_t> request_to_unique(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    std::string key = EncodeQueryRequest(requests[i]);
    const auto [it, inserted] =
        unique_index.try_emplace(std::move(key), unique_requests.size());
    if (inserted) {
      unique_requests.push_back(&requests[i]);
      unique_keys.push_back(it->first);
    }
    request_to_unique[i] = it->second;
  }

  std::vector<std::optional<Expected<QueryResult, QueryError>>> unique_results(
      unique_requests.size());
  std::vector<size_t> miss_indexes;
  for (size_t u = 0; u < unique_requests.size(); ++u) {
    const QueryKind kind = unique_requests[u]->kind;
    if (std::optional<std::string> hit =
            cache_->Get(generation, kind, unique_keys[u])) {
      if (std::optional<QueryResult> decoded =
              DecodeQueryResult(kind, *hit)) {
        unique_results[u] = Expected<QueryResult, QueryError>(
            *std::move(decoded));
        continue;
      }
    }
    miss_indexes.push_back(u);
  }

  const auto execute_miss = [&](size_t u) {
    const QueryRequest& request = *unique_requests[u];
    Expected<QueryResult, QueryError> result =
        ExecuteQuery(*snapshot, request);
    if (result.has_value()) {
      cache_->Put(generation, request.kind, unique_keys[u],
                  EncodeQueryResult(request.kind, result.value()));
    }
    unique_results[u] = std::move(result);
  };
  if (query_pool_ != nullptr && miss_indexes.size() > 1) {
    query_pool_->ParallelFor(miss_indexes.size(),
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t m = begin; m < end; ++m) {
                                 execute_miss(miss_indexes[m]);
                               }
                             });
  } else {
    for (const size_t u : miss_indexes) execute_miss(u);
  }

  std::vector<Expected<QueryResult, QueryError>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& result = *unique_results[request_to_unique[i]];
    if (result.has_value()) {
      if (metrics_.ok != nullptr) metrics_.ok->Increment();
    } else {
      if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
    }
    results.push_back(result);
  }
  return results;
}

void TaraEngine::SetQueryCacheBytes(size_t bytes) {
  cache_ = bytes == 0 ? nullptr
                      : std::make_unique<QueryCache>(
                            bytes, builder_->options().metrics);
}

}  // namespace tara
