#include "core/tara_engine.h"

#include <utility>

namespace tara {

std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMineWindow:
      return "mine_window";
    case QueryKind::kMineWindows:
      return "mine_windows";
    case QueryKind::kTrajectory:
      return "trajectory";
    case QueryKind::kCompare:
      return "compare";
    case QueryKind::kRegion:
      return "region";
    case QueryKind::kMeasures:
      return "measures";
    case QueryKind::kContent:
      return "content";
    case QueryKind::kContentView:
      return "content_view";
    case QueryKind::kRollUpRule:
      return "rollup_rule";
    case QueryKind::kRollUpMine:
      return "rollup_mine";
  }
  return "unknown";
}

TaraEngine::TaraEngine(const Options& options)
    : builder_(std::make_unique<KbBuilder>(options)) {
  RegisterMetrics(options.metrics);
}

void TaraEngine::RegisterMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const std::string name =
        std::string("tara.query.") +
        std::string(QueryKindName(static_cast<QueryKind>(k))) + ".latency_ns";
    metrics_.latency[k] = registry->GetHistogram(name);
  }
  metrics_.ok = registry->GetCounter("tara.query.ok");
  metrics_.rejected = registry->GetCounter("tara.query.rejected");
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  return builder_->AppendWindow(db, begin, end);
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions, const std::vector<PrecomputedRule>& rules) {
  return builder_->AppendPrecomputedWindow(total_transactions, rules);
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  builder_->BuildAll(data);
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindow);
  return Finish(&span, Snapshot()->MineWindow(w, setting));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindows);
  return Finish(&span, Snapshot()->MineWindows(windows, setting, mode));
}

Expected<TaraEngine::TrajectoryQueryResult, QueryError>
TaraEngine::TrajectoryQuery(WindowId anchor, const ParameterSetting& setting,
                            const WindowSet& horizon) const {
  obs::QuerySpan span = Span(QueryKind::kTrajectory);
  return Finish(&span, Snapshot()->TrajectoryQuery(anchor, setting, horizon));
}

Expected<TaraEngine::RulesetDiff, QueryError> TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kCompare);
  return Finish(&span,
                Snapshot()->CompareSettings(first, second, windows, mode));
}

Expected<RegionInfo, QueryError> TaraEngine::RecommendRegion(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRegion);
  return Finish(&span, Snapshot()->RecommendRegion(w, setting));
}

Expected<TrajectoryMeasures, QueryError> TaraEngine::RuleMeasures(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kMeasures);
  return Finish(&span, Snapshot()->RuleMeasures(rule, windows));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContent);
  return Finish(&span, Snapshot()->ContentQuery(w, items, setting));
}

Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
TaraEngine::ContentView(WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContentView);
  return Finish(&span, Snapshot()->ContentView(w, setting));
}

Expected<RollUpBound, QueryError> TaraEngine::RollUpRule(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpRule);
  return Finish(&span, Snapshot()->RollUpRule(rule, windows));
}

Expected<TaraEngine::RolledUpRules, QueryError> TaraEngine::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpMine);
  return Finish(&span, Snapshot()->MineRolledUp(windows, setting));
}

}  // namespace tara
