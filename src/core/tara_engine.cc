#include "core/tara_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mining/fp_growth.h"
#include "mining/rule_generation.h"

namespace tara {

TaraEngine::TaraEngine(const Options& options) : options_(options) {
  TARA_CHECK(options.min_support_floor > 0 &&
             options.min_support_floor <= 1.0);
  TARA_CHECK(options.min_confidence_floor >= 0 &&
             options.min_confidence_floor <= 1.0);
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  const uint64_t total = end - begin;
  WindowBuildStats stats;
  stats.window = window;

  // (1) Frequent itemset generation at the floor support.
  Stopwatch timer;
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count = MinCountForSupport(options_.min_support_floor,
                                              total);
  mine_options.max_size = options_.max_itemset_size;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db, begin, end, mine_options);
  stats.itemset_seconds = timer.ElapsedSeconds();
  stats.itemset_count = frequent.size();

  // (2) Rule derivation at the floor confidence.
  timer.Restart();
  const std::vector<MinedRule> rules =
      GenerateRules(frequent, options_.min_confidence_floor);
  stats.rule_seconds = timer.ElapsedSeconds();
  stats.rule_count = rules.size();

  // (3) Archive append.
  timer.Restart();
  archive_.RegisterWindow(window, total, mine_options.min_count,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const MinedRule& r : rules) {
    const RuleId id = catalog_.Intern(Rule{r.antecedent, r.consequent});
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  stats.archive_seconds = timer.ElapsedSeconds();

  // (4) EPS slice (stable region index) build.
  timer.Restart();
  windows_.emplace_back();
  windows_.back().Build(entries, total, options_.build_content_index,
                        catalog_);
  stats.index_seconds = timer.ElapsedSeconds();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();

  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  return window;
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions,
    const std::vector<PrecomputedRule>& rules) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  const uint64_t floor =
      MinCountForSupport(options_.min_support_floor, total_transactions);
  archive_.RegisterWindow(window, total_transactions, floor,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const PrecomputedRule& r : rules) {
    const RuleId id = catalog_.Intern(r.rule);
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  windows_.emplace_back();
  windows_.back().Build(entries, total_transactions,
                        options_.build_content_index, catalog_);
  WindowBuildStats stats;
  stats.window = window;
  stats.rule_count = rules.size();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();
  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  return window;
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  for (WindowId w = 0; w < data.window_count(); ++w) {
    const WindowInfo& info = data.window(w);
    AppendWindow(data.database(), info.begin, info.end);
  }
}

void TaraEngine::CheckSetting(const ParameterSetting& setting) const {
  TARA_CHECK(setting.min_support + 1e-12 >= options_.min_support_floor)
      << "query support below the generation floor";
  TARA_CHECK(setting.min_confidence + 1e-12 >= options_.min_confidence_floor)
      << "query confidence below the generation floor";
}

std::vector<RuleId> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  CheckSetting(setting);
  std::vector<RuleId> out;
  window_index(w).CollectRules(setting.min_support, setting.min_confidence,
                               &out);
  return out;
}

std::vector<RuleId> TaraEngine::MineWindows(
    const std::vector<WindowId>& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  std::vector<RuleId> combined;
  bool first = true;
  for (WindowId w : windows) {
    std::vector<RuleId> rules = MineWindow(w, setting);
    std::sort(rules.begin(), rules.end());
    if (first) {
      combined = std::move(rules);
      first = false;
      continue;
    }
    std::vector<RuleId> merged;
    if (mode == MatchMode::kSingle) {
      std::set_union(combined.begin(), combined.end(), rules.begin(),
                     rules.end(), std::back_inserter(merged));
    } else {
      std::set_intersection(combined.begin(), combined.end(), rules.begin(),
                            rules.end(), std::back_inserter(merged));
    }
    combined = std::move(merged);
  }
  return combined;
}

TaraEngine::TrajectoryQueryResult TaraEngine::TrajectoryQuery(
    WindowId anchor, const ParameterSetting& setting,
    const std::vector<WindowId>& horizon) const {
  TrajectoryQueryResult result;
  result.rules = MineWindow(anchor, setting);
  result.trajectories.reserve(result.rules.size());
  for (RuleId rule : result.rules) {
    result.trajectories.push_back(BuildTrajectory(archive_, rule, horizon));
  }
  return result;
}

TaraEngine::RulesetDiff TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const std::vector<WindowId>& windows, MatchMode mode) const {
  std::vector<RuleId> a = MineWindows(windows, first, mode);
  std::vector<RuleId> b = MineWindows(windows, second, mode);
  RulesetDiff diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff.only_first));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(diff.only_second));
  return diff;
}

RegionInfo TaraEngine::RecommendRegion(WindowId w,
                                       const ParameterSetting& setting) const {
  CheckSetting(setting);
  return window_index(w).Locate(setting.min_support, setting.min_confidence);
}

TrajectoryMeasures TaraEngine::RuleMeasures(
    RuleId rule, const std::vector<WindowId>& windows) const {
  return ComputeMeasures(BuildTrajectory(archive_, rule, windows));
}

std::vector<RuleId> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  CheckSetting(setting);
  std::vector<RuleId> out;
  window_index(w).ContentQuery(items, setting.min_support,
                               setting.min_confidence, &out);
  return out;
}

std::unordered_map<ItemId, std::vector<RuleId>> TaraEngine::ContentView(
    WindowId w, const ParameterSetting& setting) const {
  std::unordered_map<ItemId, std::vector<RuleId>> view;
  for (RuleId rule : MineWindow(w, setting)) {
    const Rule& r = catalog_.rule(rule);
    for (ItemId item : r.antecedent) view[item].push_back(rule);
    for (ItemId item : r.consequent) view[item].push_back(rule);
  }
  for (auto& [item, rules] : view) std::sort(rules.begin(), rules.end());
  return view;
}

RollUpBound TaraEngine::RollUpRule(RuleId rule,
                                   const std::vector<WindowId>& windows) const {
  return archive_.RollUp(rule, windows);
}

TaraEngine::RolledUpRules TaraEngine::MineRolledUp(
    const std::vector<WindowId>& windows,
    const ParameterSetting& setting) const {
  CheckSetting(setting);
  // Candidates: every rule present in at least one of the windows.
  std::vector<RuleId> candidates;
  for (WindowId w : windows) {
    TARA_CHECK_LT(w, window_entries_.size());
    for (const WindowIndex::Entry& e : window_entries_[w]) {
      candidates.push_back(e.rule);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  RolledUpRules result;
  for (RuleId rule : candidates) {
    const RollUpBound bound = archive_.RollUp(rule, windows);
    const bool certain = bound.support_lo + 1e-12 >= setting.min_support &&
                         bound.confidence_lo + 1e-12 >= setting.min_confidence;
    const bool possible = bound.support_hi + 1e-12 >= setting.min_support &&
                          bound.confidence_hi + 1e-12 >= setting.min_confidence;
    if (certain) {
      result.certain.push_back(rule);
    } else if (possible) {
      result.possible.push_back(rule);
    }
  }
  return result;
}

const WindowIndex& TaraEngine::window_index(WindowId w) const {
  TARA_CHECK_LT(w, windows_.size()) << "bad window id";
  return windows_[w];
}

const std::vector<WindowIndex::Entry>& TaraEngine::window_entries(
    WindowId w) const {
  TARA_CHECK_LT(w, window_entries_.size()) << "bad window id";
  return window_entries_[w];
}

size_t TaraEngine::IndexBytes() const {
  size_t bytes = 0;
  for (const WindowIndex& w : windows_) bytes += w.ApproximateBytes();
  return bytes;
}

}  // namespace tara
