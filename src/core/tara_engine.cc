#include "core/tara_engine.h"

#include <thread>
#include <utility>

namespace tara {

TaraEngine::TaraEngine(const Options& options)
    : builder_(std::make_unique<KbBuilder>(options)) {
  RegisterMetrics(options.metrics);
  if (options.query_cache_bytes > 0) {
    cache_ = std::make_unique<QueryCache>(options.query_cache_bytes,
                                          options.metrics);
  }
  const uint32_t parallelism =
      options.parallelism == 0 ? std::thread::hardware_concurrency()
                               : options.parallelism;
  if (parallelism > 1) query_pool_ = std::make_unique<ThreadPool>(parallelism);
}

void TaraEngine::RegisterMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (int k = 0; k < kQueryKindCount; ++k) {
    const std::string name =
        std::string("tara.query.") +
        std::string(QueryKindName(static_cast<QueryKind>(k))) + ".latency_ns";
    metrics_.latency[k] = registry->GetHistogram(name);
  }
  metrics_.ok = registry->GetCounter("tara.query.ok");
  metrics_.rejected = registry->GetCounter("tara.query.rejected");
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  return builder_->AppendWindow(db, begin, end);
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions, const std::vector<PrecomputedRule>& rules) {
  return builder_->AppendPrecomputedWindow(total_transactions, rules);
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  builder_->BuildAll(data);
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindow);
  return Finish(&span, Snapshot()->MineWindow(w, setting));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kMineWindows);
  return Finish(&span, Snapshot()->MineWindows(windows, setting, mode));
}

Expected<TaraEngine::TrajectoryQueryResult, QueryError>
TaraEngine::TrajectoryQuery(WindowId anchor, const ParameterSetting& setting,
                            const WindowSet& horizon) const {
  obs::QuerySpan span = Span(QueryKind::kTrajectory);
  return Finish(&span, Snapshot()->TrajectoryQuery(anchor, setting, horizon));
}

Expected<TaraEngine::RulesetDiff, QueryError> TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  obs::QuerySpan span = Span(QueryKind::kCompare);
  return Finish(&span,
                Snapshot()->CompareSettings(first, second, windows, mode));
}

Expected<RegionInfo, QueryError> TaraEngine::RecommendRegion(
    WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRegion);
  return Finish(&span, Snapshot()->RecommendRegion(w, setting));
}

Expected<TrajectoryMeasures, QueryError> TaraEngine::RuleMeasures(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kMeasures);
  return Finish(&span, Snapshot()->RuleMeasures(rule, windows));
}

Expected<std::vector<RuleId>, QueryError> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContent);
  return Finish(&span, Snapshot()->ContentQuery(w, items, setting));
}

Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
TaraEngine::ContentView(WindowId w, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kContentView);
  return Finish(&span, Snapshot()->ContentView(w, setting));
}

Expected<RollUpBound, QueryError> TaraEngine::RollUpRule(
    RuleId rule, const WindowSet& windows) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpRule);
  return Finish(&span, Snapshot()->RollUpRule(rule, windows));
}

Expected<TaraEngine::RolledUpRules, QueryError> TaraEngine::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  obs::QuerySpan span = Span(QueryKind::kRollUpMine);
  return Finish(&span, Snapshot()->MineRolledUp(windows, setting));
}

Expected<QueryResult, QueryError> TaraEngine::Execute(
    const QueryRequest& request) const {
  obs::QuerySpan span = Span(request.kind);
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot = Snapshot();
  if (cache_ == nullptr) {
    return Finish(&span, ExecuteQuery(*snapshot, request));
  }
  const std::string key = EncodeQueryRequest(request);
  if (std::optional<std::string> hit =
          cache_->Get(snapshot->generation(), request.kind, key)) {
    if (std::optional<QueryResult> decoded =
            DecodeQueryResult(request.kind, *hit)) {
      return Finish(&span, Expected<QueryResult, QueryError>(
                               *std::move(decoded)));
    }
  }
  Expected<QueryResult, QueryError> result = ExecuteQuery(*snapshot, request);
  if (result.has_value()) {
    cache_->Put(snapshot->generation(), request.kind, key,
                EncodeQueryResult(request.kind, result.value()));
  }
  return Finish(&span, std::move(result));
}

std::vector<Expected<QueryResult, QueryError>> TaraEngine::ExecuteBatch(
    std::span<const QueryRequest> requests) const {
  // One snapshot for the whole batch: every request — hit or miss — is
  // answered from the same generation.
  const std::shared_ptr<const KnowledgeBaseSnapshot> snapshot = Snapshot();
  if (cache_ == nullptr) {
    auto results = ExecuteQueryBatch(*snapshot, requests, query_pool_.get());
    for (const auto& result : results) {
      if (result.has_value()) {
        if (metrics_.ok != nullptr) metrics_.ok->Increment();
      } else {
        if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
      }
    }
    return results;
  }

  // Dedup by canonical request bytes, then partition into cache hits and
  // misses; only the misses execute (in parallel when a pool exists).
  const uint64_t generation = snapshot->generation();
  std::unordered_map<std::string, size_t> unique_index;
  std::vector<const QueryRequest*> unique_requests;
  std::vector<std::string> unique_keys;
  std::vector<size_t> request_to_unique(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    std::string key = EncodeQueryRequest(requests[i]);
    const auto [it, inserted] =
        unique_index.try_emplace(std::move(key), unique_requests.size());
    if (inserted) {
      unique_requests.push_back(&requests[i]);
      unique_keys.push_back(it->first);
    }
    request_to_unique[i] = it->second;
  }

  std::vector<std::optional<Expected<QueryResult, QueryError>>> unique_results(
      unique_requests.size());
  std::vector<size_t> miss_indexes;
  for (size_t u = 0; u < unique_requests.size(); ++u) {
    const QueryKind kind = unique_requests[u]->kind;
    if (std::optional<std::string> hit =
            cache_->Get(generation, kind, unique_keys[u])) {
      if (std::optional<QueryResult> decoded =
              DecodeQueryResult(kind, *hit)) {
        unique_results[u] = Expected<QueryResult, QueryError>(
            *std::move(decoded));
        continue;
      }
    }
    miss_indexes.push_back(u);
  }

  const auto execute_miss = [&](size_t u) {
    const QueryRequest& request = *unique_requests[u];
    Expected<QueryResult, QueryError> result =
        ExecuteQuery(*snapshot, request);
    if (result.has_value()) {
      cache_->Put(generation, request.kind, unique_keys[u],
                  EncodeQueryResult(request.kind, result.value()));
    }
    unique_results[u] = std::move(result);
  };
  if (query_pool_ != nullptr && miss_indexes.size() > 1) {
    query_pool_->ParallelFor(miss_indexes.size(),
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t m = begin; m < end; ++m) {
                                 execute_miss(miss_indexes[m]);
                               }
                             });
  } else {
    for (const size_t u : miss_indexes) execute_miss(u);
  }

  std::vector<Expected<QueryResult, QueryError>> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& result = *unique_results[request_to_unique[i]];
    if (result.has_value()) {
      if (metrics_.ok != nullptr) metrics_.ok->Increment();
    } else {
      if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
    }
    results.push_back(result);
  }
  return results;
}

void TaraEngine::SetQueryCacheBytes(size_t bytes) {
  cache_ = bytes == 0 ? nullptr
                      : std::make_unique<QueryCache>(
                            bytes, builder_->options().metrics);
}

}  // namespace tara
