#include "core/tara_engine.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mining/fp_growth.h"
#include "mining/rule_generation.h"

namespace tara {
namespace {

/// Resolves Options::parallelism (0 = hardware concurrency) to a concrete
/// worker count.
uint32_t EffectiveParallelism(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

std::optional<std::string> TaraEngine::Options::Validate() const {
  std::ostringstream error;
  if (!(min_support_floor > 0.0 && min_support_floor <= 1.0)) {
    error << "Options::min_support_floor must be in (0, 1] — windows are "
             "mined once at this floor and online queries may only tighten "
             "it — got "
          << min_support_floor;
    return error.str();
  }
  if (!(min_confidence_floor >= 0.0 && min_confidence_floor <= 1.0)) {
    error << "Options::min_confidence_floor must be in [0, 1] — got "
          << min_confidence_floor;
    return error.str();
  }
  if (max_itemset_size == 1) {
    error << "Options::max_itemset_size of 1 admits no rules (a rule needs "
             ">= 2 items); use 0 for unlimited or a cap >= 2";
    return error.str();
  }
  return std::nullopt;
}

TaraEngine::TaraEngine(const Options& options) : options_(options) {
  const std::optional<std::string> error = options_.Validate();
  TARA_CHECK(!error.has_value()) << *error;
  const uint32_t parallelism = EffectiveParallelism(options_.parallelism);
  if (parallelism > 1) pool_ = std::make_unique<ThreadPool>(parallelism);
}

TaraEngine::MinedWindow TaraEngine::MineWindowSlice(
    const TransactionDatabase& db, size_t begin, size_t end,
    ThreadPool* intra_pool) const {
  MinedWindow mined;
  mined.total_transactions = end - begin;

  // (1) Frequent itemset generation at the floor support.
  Stopwatch timer;
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options mine_options;
  mine_options.min_count =
      MinCountForSupport(options_.min_support_floor, mined.total_transactions);
  mine_options.max_size = options_.max_itemset_size;
  mined.floor_count = mine_options.min_count;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(db, begin, end, mine_options);
  mined.itemset_seconds = timer.ElapsedSeconds();
  mined.itemset_count = frequent.size();

  // (2) Rule derivation at the floor confidence.
  timer.Restart();
  mined.rules =
      GenerateRules(frequent, options_.min_confidence_floor, intra_pool);
  mined.rule_seconds = timer.ElapsedSeconds();
  return mined;
}

std::vector<WindowIndex::Entry> TaraEngine::InternAndArchive(
    WindowId window, const std::vector<MinedRule>& rules) {
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const MinedRule& r : rules) {
    const RuleId id = catalog_.Intern(Rule{r.antecedent, r.consequent});
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  return entries;
}

WindowId TaraEngine::CommitWindow(MinedWindow mined) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  WindowBuildStats stats;
  stats.window = window;
  stats.itemset_seconds = mined.itemset_seconds;
  stats.rule_seconds = mined.rule_seconds;
  stats.itemset_count = mined.itemset_count;
  stats.rule_count = mined.rules.size();

  // (3) Archive append.
  Stopwatch timer;
  archive_.RegisterWindow(window, mined.total_transactions, mined.floor_count,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries =
      InternAndArchive(window, mined.rules);
  stats.archive_seconds = timer.ElapsedSeconds();

  // (4) EPS slice (stable region index) build.
  timer.Restart();
  windows_.emplace_back();
  windows_.back().Build(entries, mined.total_transactions,
                        options_.build_content_index, catalog_, pool_.get());
  stats.index_seconds = timer.ElapsedSeconds();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();

  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  return window;
}

WindowId TaraEngine::AppendWindow(const TransactionDatabase& db, size_t begin,
                                  size_t end) {
  return CommitWindow(MineWindowSlice(db, begin, end, pool_.get()));
}

WindowId TaraEngine::AppendPrecomputedWindow(
    uint64_t total_transactions,
    const std::vector<PrecomputedRule>& rules) {
  const WindowId window = static_cast<WindowId>(windows_.size());
  const uint64_t floor =
      MinCountForSupport(options_.min_support_floor, total_transactions);
  archive_.RegisterWindow(window, total_transactions, floor,
                          options_.min_confidence_floor);
  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const PrecomputedRule& r : rules) {
    const RuleId id = catalog_.Intern(r.rule);
    archive_.Add(id, window, r.rule_count, r.antecedent_count);
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  windows_.emplace_back();
  windows_.back().Build(entries, total_transactions,
                        options_.build_content_index, catalog_, pool_.get());
  WindowBuildStats stats;
  stats.window = window;
  stats.rule_count = rules.size();
  stats.location_count = windows_.back().location_count();
  stats.region_count = windows_.back().region_count();
  window_entries_.push_back(std::move(entries));
  stats_.push_back(stats);
  return window;
}

void TaraEngine::BuildAll(const EvolvingDatabase& data) {
  const uint32_t n = data.window_count();
  ThreadPool* pool = pool_.get();
  if (pool == nullptr || n <= 1) {
    for (WindowId w = 0; w < n; ++w) {
      const WindowInfo& info = data.window(w);
      AppendWindow(data.database(), info.begin, info.end);
    }
    return;
  }

  // Parallel pipeline. Windows are independent by construction (the iPARAS
  // increment never revisits prior windows), so:
  //   stage 1 (fan-out):  mine itemsets + derive rules per window;
  //   stage 2 (serial):   intern rules + append archive counts, strictly
  //                       in window order — RuleIds and the archive byte
  //                       stream come out identical to a sequential build;
  //   stage 3 (fan-out):  build each committed window's EPS slice.
  const TransactionDatabase& db = data.database();
  const size_t base = windows_.size();
  windows_.resize(base + n);
  window_entries_.resize(base + n);
  stats_.resize(base + n);

  // Keep only a few windows of mined-but-uncommitted rules in memory.
  const uint32_t max_ahead = pool->size() + 2;
  std::deque<std::future<MinedWindow>> in_flight;
  WindowId next_to_mine = 0;
  const auto submit_next_mine = [&] {
    if (next_to_mine >= n) return;
    const WindowInfo info = data.window(next_to_mine);
    in_flight.push_back(pool->Submit([this, &db, info] {
      // Intra-window loops stay sequential here: the window fan-out
      // already keeps every worker busy.
      return MineWindowSlice(db, info.begin, info.end, nullptr);
    }));
    ++next_to_mine;
  };
  while (next_to_mine < n && next_to_mine < max_ahead) submit_next_mine();

  std::vector<std::future<void>> eps_builds;
  eps_builds.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MinedWindow mined = in_flight.front().get();
    in_flight.pop_front();
    submit_next_mine();

    const WindowId window = static_cast<WindowId>(base + i);
    WindowBuildStats& stats = stats_[window];
    stats.window = window;
    stats.itemset_seconds = mined.itemset_seconds;
    stats.rule_seconds = mined.rule_seconds;
    stats.itemset_count = mined.itemset_count;
    stats.rule_count = mined.rules.size();

    Stopwatch timer;
    archive_.RegisterWindow(window, mined.total_transactions,
                            mined.floor_count,
                            options_.min_confidence_floor);
    window_entries_[window] = InternAndArchive(window, mined.rules);
    stats.archive_seconds = timer.ElapsedSeconds();

    // Stage 3 reads the catalog (content index only) while later windows
    // intern — safe: RuleCatalog readers lock shared against the writer.
    const uint64_t total = mined.total_transactions;
    eps_builds.push_back(pool->Submit([this, window, total] {
      Stopwatch index_timer;
      windows_[window].Build(window_entries_[window], total,
                             options_.build_content_index, catalog_, nullptr);
      WindowBuildStats& slot = stats_[window];
      slot.index_seconds = index_timer.ElapsedSeconds();
      slot.location_count = windows_[window].location_count();
      slot.region_count = windows_[window].region_count();
    }));
  }
  for (std::future<void>& f : eps_builds) f.get();
}

void TaraEngine::CheckSetting(const ParameterSetting& setting) const {
  TARA_CHECK(setting.min_support + 1e-12 >= options_.min_support_floor)
      << "query support below the generation floor";
  TARA_CHECK(setting.min_confidence + 1e-12 >= options_.min_confidence_floor)
      << "query confidence below the generation floor";
}

void TaraEngine::CheckWindows(const WindowSet& windows) const {
  TARA_CHECK_LE(windows.required_window_count(), windows_.size())
      << "WindowSet built for a different (larger) engine";
}

std::vector<RuleId> TaraEngine::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  CheckSetting(setting);
  std::vector<RuleId> out;
  window_index(w).CollectRules(setting.min_support, setting.min_confidence,
                               &out);
  return out;
}

std::vector<RuleId> TaraEngine::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  CheckWindows(windows);
  std::vector<RuleId> combined;
  bool first = true;
  for (WindowId w : windows) {
    std::vector<RuleId> rules = MineWindow(w, setting);
    std::sort(rules.begin(), rules.end());
    if (first) {
      combined = std::move(rules);
      first = false;
      continue;
    }
    std::vector<RuleId> merged;
    if (mode == MatchMode::kSingle) {
      std::set_union(combined.begin(), combined.end(), rules.begin(),
                     rules.end(), std::back_inserter(merged));
    } else {
      std::set_intersection(combined.begin(), combined.end(), rules.begin(),
                            rules.end(), std::back_inserter(merged));
    }
    combined = std::move(merged);
  }
  return combined;
}

TaraEngine::TrajectoryQueryResult TaraEngine::TrajectoryQuery(
    WindowId anchor, const ParameterSetting& setting,
    const WindowSet& horizon) const {
  CheckWindows(horizon);
  TrajectoryQueryResult result;
  result.rules = MineWindow(anchor, setting);
  result.trajectories.reserve(result.rules.size());
  for (RuleId rule : result.rules) {
    result.trajectories.push_back(
        BuildTrajectory(archive_, rule, horizon.ids()));
  }
  return result;
}

TaraEngine::RulesetDiff TaraEngine::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  std::vector<RuleId> a = MineWindows(windows, first, mode);
  std::vector<RuleId> b = MineWindows(windows, second, mode);
  RulesetDiff diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff.only_first));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(diff.only_second));
  return diff;
}

RegionInfo TaraEngine::RecommendRegion(WindowId w,
                                       const ParameterSetting& setting) const {
  CheckSetting(setting);
  return window_index(w).Locate(setting.min_support, setting.min_confidence);
}

TrajectoryMeasures TaraEngine::RuleMeasures(RuleId rule,
                                            const WindowSet& windows) const {
  CheckWindows(windows);
  return ComputeMeasures(BuildTrajectory(archive_, rule, windows.ids()));
}

std::vector<RuleId> TaraEngine::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  CheckSetting(setting);
  std::vector<RuleId> out;
  window_index(w).ContentQuery(items, setting.min_support,
                               setting.min_confidence, &out);
  return out;
}

std::unordered_map<ItemId, std::vector<RuleId>> TaraEngine::ContentView(
    WindowId w, const ParameterSetting& setting) const {
  std::unordered_map<ItemId, std::vector<RuleId>> view;
  for (RuleId rule : MineWindow(w, setting)) {
    const Rule& r = catalog_.rule(rule);
    for (ItemId item : r.antecedent) view[item].push_back(rule);
    for (ItemId item : r.consequent) view[item].push_back(rule);
  }
  for (auto& [item, rules] : view) std::sort(rules.begin(), rules.end());
  return view;
}

RollUpBound TaraEngine::RollUpRule(RuleId rule,
                                   const WindowSet& windows) const {
  CheckWindows(windows);
  return archive_.RollUp(rule, windows.ids());
}

TaraEngine::RolledUpRules TaraEngine::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  CheckSetting(setting);
  CheckWindows(windows);
  // Candidates: every rule present in at least one of the windows.
  std::vector<RuleId> candidates;
  for (WindowId w : windows) {
    for (const WindowIndex::Entry& e : window_entries_[w]) {
      candidates.push_back(e.rule);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  RolledUpRules result;
  for (RuleId rule : candidates) {
    const RollUpBound bound = archive_.RollUp(rule, windows.ids());
    const bool certain = bound.support_lo + 1e-12 >= setting.min_support &&
                         bound.confidence_lo + 1e-12 >= setting.min_confidence;
    const bool possible = bound.support_hi + 1e-12 >= setting.min_support &&
                          bound.confidence_hi + 1e-12 >= setting.min_confidence;
    if (certain) {
      result.certain.push_back(rule);
    } else if (possible) {
      result.possible.push_back(rule);
    }
  }
  return result;
}

const WindowIndex& TaraEngine::window_index(WindowId w) const {
  TARA_CHECK_LT(w, windows_.size()) << "bad window id";
  return windows_[w];
}

const std::vector<WindowIndex::Entry>& TaraEngine::window_entries(
    WindowId w) const {
  TARA_CHECK_LT(w, window_entries_.size()) << "bad window id";
  return window_entries_[w];
}

size_t TaraEngine::IndexBytes() const {
  size_t bytes = 0;
  for (const WindowIndex& w : windows_) bytes += w.ApproximateBytes();
  return bytes;
}

}  // namespace tara
