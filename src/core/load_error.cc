#include "core/load_error.h"

namespace tara {

std::string_view LoadErrorCodeName(LoadError::Code code) {
  switch (code) {
    case LoadError::Code::kIoError:
      return "io_error";
    case LoadError::Code::kBadMagic:
      return "bad_magic";
    case LoadError::Code::kBadVersion:
      return "bad_version";
    case LoadError::Code::kTruncated:
      return "truncated";
    case LoadError::Code::kBadManifest:
      return "bad_manifest";
    case LoadError::Code::kCorruptSegment:
      return "corrupt_segment";
    case LoadError::Code::kTrailingBytes:
      return "trailing_bytes";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& out, const LoadError& error) {
  return out << "LoadError[" << LoadErrorCodeName(error.code) << "]: "
             << error.message;
}

}  // namespace tara
