#ifndef TARA_CORE_KB_SNAPSHOT_H_
#define TARA_CORE_KB_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/expected.h"
#include "core/query_error.h"
#include "core/rollup_tree.h"
#include "core/rule_catalog.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "core/trajectory.h"
#include "core/window_set.h"
#include "txdb/evolving_database.h"

namespace tara {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// A (minimum support, minimum confidence) query setting.
struct ParameterSetting {
  double min_support = 0.0;
  double min_confidence = 0.0;
};

/// How a multi-window predicate combines per-window validity.
enum class MatchMode {
  kSingle,  ///< valid in at least one of the windows (union)
  kExact,   ///< valid in every window (intersection)
};

/// Knowledge-base construction options, shared by the KbBuilder and the
/// TaraEngine facade (which aliases this as TaraEngine::Options).
struct KbOptions {
  /// Generation floors (Table 4): the per-window offline mining
  /// thresholds. Each window is mined exactly once at these floors, so
  /// they bound the online parameter space from below: every online
  /// query must use minsupp/minconf at or above them (checked per
  /// query), and the roll-up interval bounds widen by at most one floor
  /// count per missing window. Valid ranges: min_support_floor in
  /// (0, 1], min_confidence_floor in [0, 1].
  double min_support_floor = 0.001;
  double min_confidence_floor = 0.1;
  /// Cap on frequent-itemset cardinality (0 = unlimited, otherwise
  /// >= 2; a cap of 1 would admit no rules at all).
  uint32_t max_itemset_size = 0;
  /// Build per-window item→rule inverted indexes (the TARA-S variant)
  /// enabling Q5 content queries at extra build cost.
  bool build_content_index = false;
  /// Worker threads for the offline build: BuildAll overlaps whole
  /// windows, AppendWindow parallelizes its intra-window hot loops
  /// (rule derivation, stable-region sort). 1 = fully sequential
  /// (default), 0 = use the hardware concurrency. Any value yields a
  /// byte-identical serialized knowledge base; this is an execution
  /// knob, not knowledge-base state, and is not serialized.
  uint32_t parallelism = 1;
  /// Destination for the engine's instruments, or nullptr for the null
  /// sink (no clocks, no atomics on the query path). The registry must
  /// outlive the engine. Like parallelism this is a runtime knob, not
  /// knowledge-base state, and is not serialized. Engines sharing a
  /// registry aggregate into the same named series.
  obs::MetricsRegistry* metrics = nullptr;
  /// Memory budget for the generation-pinned query cache serving
  /// TaraEngine::Execute / ExecuteBatch, in bytes. 0 (default) disables
  /// caching entirely — no hashing, no serialization on the query path.
  /// A runtime knob like parallelism/metrics: not serialized, and
  /// adjustable after construction via TaraEngine::SetQueryCacheBytes.
  size_t query_cache_bytes = 0;
  /// Directory of the write-ahead log for live ingestion, or "" (default)
  /// for no WAL. When set, construction replays any log found there into
  /// the engine and every committed window is fdatasync'd to the log
  /// before Append*/BuildAll return — see wal.h for the durability
  /// contract. Construction aborts if the log cannot be attached; callers
  /// that want a typed error attach via TaraEngine::AttachWal instead.
  /// A runtime knob like parallelism/metrics: not serialized.
  std::string wal_dir;

  /// Returns an actionable description of the first invalid field, or
  /// nullopt when the options are usable. The KbBuilder (and therefore
  /// the TaraEngine) constructor calls this and aborts with the returned
  /// message.
  std::optional<std::string> Validate() const;
};

/// Per-window offline timing/size breakdown (Figure 9's stacked tasks).
struct WindowBuildStats {
  WindowId window = 0;
  double itemset_seconds = 0;  ///< frequent itemset generation
  double rule_seconds = 0;     ///< rule derivation
  double archive_seconds = 0;  ///< TAR Archive append
  double index_seconds = 0;    ///< EPS (stable region) index build
  size_t itemset_count = 0;
  size_t rule_count = 0;
  size_t location_count = 0;
  size_t region_count = 0;

  double total_seconds() const {
    return itemset_seconds + rule_seconds + archive_seconds + index_seconds;
  }
};

/// A rule with counts produced outside the engine (an external miner, or
/// the knowledge-base loader).
struct PrecomputedRule {
  Rule rule;
  uint64_t rule_count = 0;
  uint64_t antecedent_count = 0;
};

/// Result of the Q1 trajectory query: the rules matching the anchor
/// setting plus each rule's trajectory over the horizon windows.
struct TrajectoryQueryResult {
  std::vector<RuleId> rules;
  std::vector<Trajectory> trajectories;
};

/// Result of the Q2 ruleset comparison.
struct RulesetDiff {
  std::vector<RuleId> only_first;
  std::vector<RuleId> only_second;
};

/// Result of mining over a rolled-up window union: rules certainly valid
/// (interval lower bounds pass) and rules whose validity depends on the
/// sub-floor windows (only upper bounds pass).
struct RolledUpRules {
  std::vector<RuleId> certain;
  std::vector<RuleId> possible;
};

/// One committed window of the knowledge base: its EPS index slice, its
/// build inputs (kept for roll-up candidate enumeration and
/// serialization), and its build breakdown. Immutable once a snapshot
/// referencing it has been published; shared by every later snapshot, so
/// appending a window never copies older windows.
struct WindowSegment {
  WindowIndex index;
  std::vector<WindowIndex::Entry> entries;
  uint64_t total_transactions = 0;
  uint64_t floor_count = 0;
  /// Catalog size after this window's commit. Rules first interned by
  /// this window occupy ids [previous segment's watermark, this
  /// watermark) — the invariant the segmented serialization format
  /// relies on to persist one window at a time.
  RuleId rule_watermark = 0;
  WindowBuildStats stats;
};

/// An immutable, point-in-time view of the knowledge base: the rule
/// catalog (bounded by the rule-count watermark at publication), the TAR
/// Archive, and one WindowSegment per committed window. All online query
/// logic (Q1–Q5, roll-up/drill-down) lives here and reads only this
/// state, so any number of threads may query one snapshot — or different
/// snapshots — while a KbBuilder keeps committing new windows and
/// publishing new generations.
///
/// Snapshots are obtained from KbBuilder::snapshot() /
/// TaraEngine::Snapshot() as shared_ptr<const KnowledgeBaseSnapshot>;
/// holding the pointer pins the generation (RCU-style): the data it
/// references is never mutated and outlives the pointer.
///
/// Queries validate their request and return Expected<T, QueryError> —
/// the same crash-free contract as the TaraEngine facade, minus the
/// facade's metric spans.
class KnowledgeBaseSnapshot {
 public:
  /// The generation number: 0 for the empty snapshot published at
  /// construction, +1 per publication since.
  uint64_t generation() const { return generation_; }

  uint32_t window_count() const {
    return static_cast<uint32_t>(segments_.size());
  }

  /// Number of rules interned when this snapshot was published. The
  /// shared catalog may have grown past this since; ids >= rule_count()
  /// are *not* part of this generation and are rejected by queries.
  size_t rule_count() const { return rule_count_; }

  /// The shared rule catalog. Safe for concurrent readers (internally
  /// synchronized against the single interning writer); only ids below
  /// rule_count() belong to this snapshot.
  const RuleCatalog& catalog() const { return *catalog_; }

  /// This generation's archive. Immutable; never shared with the
  /// builder's working archive.
  const TarArchive& archive() const { return *archive_; }

  /// This generation's hierarchical roll-up index (partial sums over the
  /// archive). Immutable; answers RollUpRule/MineRolledUp/EntryFor in
  /// O(log) instead of decoding streams.
  const RollUpTree& rollup_tree() const { return *rollup_tree_; }

  /// The archived entry of `rule` in `window`, if any — O(log entries)
  /// via the roll-up tree's window offsets, no stream decode.
  std::optional<ArchiveEntry> EntryFor(RuleId rule, WindowId window) const {
    return rollup_tree_->EntryFor(rule, window);
  }

  const WindowSegment& segment(WindowId w) const;
  const WindowIndex& window_index(WindowId w) const {
    return segment(w).index;
  }
  const std::vector<WindowIndex::Entry>& window_entries(WindowId w) const {
    return segment(w).entries;
  }

  /// The construction options the knowledge base was built with (runtime
  /// knobs — parallelism, metrics — as of the owning builder).
  const KbOptions& options() const { return options_; }

  /// Approximate bytes of all EPS window indexes (Figure 12 bookkeeping).
  size_t IndexBytes() const;

  /// --- WindowSet construction -------------------------------------------

  /// A validated WindowSet over this snapshot's windows. Aborts if any id
  /// is out of range.
  WindowSet MakeWindowSet(std::vector<WindowId> ids) const {
    return WindowSet(std::move(ids), window_count());
  }

  /// Every window of the snapshot, oldest first.
  WindowSet AllWindows() const { return WindowSet::All(window_count()); }

  /// The newest `count` windows (fewer if the snapshot has fewer).
  WindowSet RecentWindows(uint32_t count) const {
    const uint32_t n = window_count();
    return WindowSet::Range(count >= n ? 0 : n - count, n, n);
  }

  /// --- Online operations ------------------------------------------------
  /// All of these validate the request and return a QueryError (never
  /// abort) on invalid thresholds, window ids, empty window sets, or
  /// unknown rules.

  /// Rules valid in window `w` under `setting`.
  Expected<std::vector<RuleId>, QueryError> MineWindow(
      WindowId w, const ParameterSetting& setting) const;

  /// Rules valid across `windows` under `setting`, combined per `mode`.
  /// Output is sorted by RuleId.
  Expected<std::vector<RuleId>, QueryError> MineWindows(
      const WindowSet& windows, const ParameterSetting& setting,
      MatchMode mode) const;

  /// Q1: rules matching `setting` in `anchor`, each with its trajectory
  /// over `horizon` (oldest window first).
  Expected<TrajectoryQueryResult, QueryError> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const WindowSet& horizon) const;

  /// Q2: symmetric difference of the rulesets of two settings over the
  /// same windows. Outputs sorted by RuleId.
  Expected<RulesetDiff, QueryError> CompareSettings(
      const ParameterSetting& first, const ParameterSetting& second,
      const WindowSet& windows, MatchMode mode) const;

  /// Q3: the time-aware stable region of `setting` in window `w`.
  Expected<RegionInfo, QueryError> RecommendRegion(
      WindowId w, const ParameterSetting& setting) const;

  /// Q4: evolving-behavior measures of a rule over `windows`.
  Expected<TrajectoryMeasures, QueryError> RuleMeasures(
      RuleId rule, const WindowSet& windows) const;

  /// Q5: rules valid under `setting` in window `w` containing all of
  /// `items`. Requires KbOptions::build_content_index.
  Expected<std::vector<RuleId>, QueryError> ContentQuery(
      WindowId w, const Itemset& items,
      const ParameterSetting& setting) const;

  /// Builds the merged item→rules view of a window's result set (the
  /// TARA-S region-index merge).
  Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
  ContentView(WindowId w, const ParameterSetting& setting) const;

  /// Roll-up: interval measures of `rule` over the union of `windows`.
  Expected<RollUpBound, QueryError> RollUpRule(
      RuleId rule, const WindowSet& windows) const;

  /// Roll-up mining: rules valid over the union of `windows` under
  /// `setting`, split into certain and possible per the interval bounds.
  Expected<RolledUpRules, QueryError> MineRolledUp(
      const WindowSet& windows, const ParameterSetting& setting) const;

 private:
  friend class KbBuilder;

  KnowledgeBaseSnapshot() = default;

  /// --- Request validation (each returns the error, or nullopt) ---------
  std::optional<QueryError> ValidateSetting(
      const ParameterSetting& setting) const;
  std::optional<QueryError> ValidateWindow(WindowId w) const;
  std::optional<QueryError> ValidateWindows(const WindowSet& windows) const;
  std::optional<QueryError> ValidateRule(RuleId rule) const;

  /// Unvalidated single-window collect shared by the public entrypoints.
  std::vector<RuleId> CollectWindow(WindowId w,
                                    const ParameterSetting& setting) const;
  /// Unvalidated multi-window merge.
  std::vector<RuleId> MineWindowsUnchecked(const WindowSet& windows,
                                           const ParameterSetting& setting,
                                           MatchMode mode) const;

  /// Shared with the owning builder; bounded by rule_count_.
  std::shared_ptr<const RuleCatalog> catalog_;
  size_t rule_count_ = 0;
  std::shared_ptr<const TarArchive> archive_;
  /// Partial-sum mirror of archive_; rule series shared across
  /// generations copy-on-write.
  std::shared_ptr<const RollUpTree> rollup_tree_;
  /// Shared with every other generation that committed the same windows.
  std::vector<std::shared_ptr<const WindowSegment>> segments_;
  uint64_t generation_ = 0;
  KbOptions options_;
};

}  // namespace tara

#endif  // TARA_CORE_KB_SNAPSHOT_H_
