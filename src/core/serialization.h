#ifndef TARA_CORE_SERIALIZATION_H_
#define TARA_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "core/kb_storage.h"
#include "core/tara_engine.h"

namespace tara {

/// Stream-level serialization of a TARA knowledge base: the segmented
/// TARAKB2 format of kb_storage.h (manifest + per-window segments) as one
/// contiguous stream. The offline phase can thus run once — on a beefier
/// machine or a schedule — and the interactive explorer reloads the index
/// in milliseconds, which is how a deployment of the paper's Figure 2
/// architecture would separate its two halves.
///
/// Output is deterministic: byte-identical for the same window sequence
/// regardless of build parallelism or whether windows arrived via
/// BuildAll or live AppendWindow calls. For incremental on-disk
/// persistence (append = one new segment file + manifest) use the
/// directory API in kb_storage.h.

/// Writes the knowledge base of `snapshot` to `out`.
void SaveKnowledgeBase(const KnowledgeBaseSnapshot& snapshot,
                       std::ostream* out);

/// Writes `engine`'s current generation to `out`.
void SaveKnowledgeBase(const TaraEngine& engine, std::ostream* out);

/// Reads a knowledge base written by SaveKnowledgeBase. The stream is
/// untrusted input: wrong magic, truncation, or corruption yields a
/// LoadError, never an abort. `metrics` becomes the loaded engine's
/// Options::metrics — runtime knobs are not part of the serialized state,
/// so the deployment attaches its registry here (nullptr = null sink).
Expected<TaraEngine, LoadError> LoadKnowledgeBase(
    std::istream* in, obs::MetricsRegistry* metrics = nullptr);

/// Convenience string round-trip helpers.
std::string KnowledgeBaseToString(const TaraEngine& engine);
std::string KnowledgeBaseToString(const KnowledgeBaseSnapshot& snapshot);
Expected<TaraEngine, LoadError> KnowledgeBaseFromString(
    const std::string& bytes, obs::MetricsRegistry* metrics = nullptr);

}  // namespace tara

#endif  // TARA_CORE_SERIALIZATION_H_
