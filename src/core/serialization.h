#ifndef TARA_CORE_SERIALIZATION_H_
#define TARA_CORE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "core/tara_engine.h"

namespace tara {

/// Binary serialization of a TARA knowledge base (options, catalog, and
/// per-window rule counts). The offline phase can thus run once — on a
/// beefier machine or a schedule — and the interactive explorer reloads
/// the index in milliseconds, which is how a deployment of the paper's
/// Figure 2 architecture would separate its two halves.
///
/// Format: magic + version, options, window metadata, interned rules, and
/// per-window (rule, counts) entries; integers are LEB128 varints, doubles
/// are 8-byte little-endian IEEE 754.

/// Writes the knowledge base of `engine` to `out`.
void SaveKnowledgeBase(const TaraEngine& engine, std::ostream* out);

/// Reads a knowledge base written by SaveKnowledgeBase. Aborts on a
/// malformed stream (wrong magic/version or truncation). `metrics`
/// becomes the loaded engine's Options::metrics — runtime knobs are not
/// part of the serialized state, so the deployment attaches its registry
/// here (nullptr = null sink).
TaraEngine LoadKnowledgeBase(std::istream* in,
                             obs::MetricsRegistry* metrics = nullptr);

/// Convenience string round-trip helpers.
std::string KnowledgeBaseToString(const TaraEngine& engine);
TaraEngine KnowledgeBaseFromString(const std::string& bytes,
                                   obs::MetricsRegistry* metrics = nullptr);

}  // namespace tara

#endif  // TARA_CORE_SERIALIZATION_H_
