#ifndef TARA_CORE_KB_BUILDER_H_
#define TARA_CORE_KB_BUILDER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/expected.h"
#include "common/thread_pool.h"
#include "core/kb_snapshot.h"
#include "core/load_error.h"
#include "core/rollup_tree.h"
#include "core/wal.h"
#include "mining/rule_generation.h"
#include "obs/metrics.h"
#include "txdb/evolving_database.h"

namespace tara {

/// The mutable half of the knowledge base: mines arriving windows, commits
/// them onto the current KnowledgeBaseSnapshot, and publishes each new
/// generation with a single atomic shared_ptr swap (RCU-style).
///
/// ## Concurrency contract
///
/// - **One writer.** AppendWindow / AppendPrecomputedWindow / BuildAll are
///   serialized by an internal commit mutex; concurrent writer calls are
///   safe but pointless (they queue).
/// - **Any number of readers, any time.** snapshot() is a lock-free atomic
///   load; the returned shared_ptr pins that generation for as long as it
///   is held. Readers never block a writer and a writer never blocks
///   readers — an in-flight query keeps answering from the generation it
///   pinned while newer windows are committed and published.
///
/// What makes the swap safe:
/// - WindowSegments are immutable once published and shared by reference
///   across generations (appending window N copies N-1 pointers, not the
///   segments themselves).
/// - The RuleCatalog is shared between the builder and all snapshots: it
///   is append-only, internally synchronized (shared_mutex), and each
///   snapshot carries the rule-count watermark valid for its generation.
/// - The TAR Archive's delta streams are rewritten in place by appends, so
///   each published snapshot receives its own immutable copy of the
///   (compressed) archive; the builder keeps the working archive private.
///
/// Determinism: the commit stage (catalog interning + archive appends)
/// runs strictly in window order whether windows arrive via BuildAll's
/// parallel pipeline or one at a time through live AppendWindow calls, so
/// RuleIds — and the serialized knowledge base — are byte-identical for
/// the same window sequence at any parallelism, on either path.
class KbBuilder {
 public:
  using Options = KbOptions;

  /// Validates the options (aborts with an actionable message on an
  /// invalid field) and publishes the empty generation-0 snapshot.
  explicit KbBuilder(const Options& options);

  /// Mines and indexes transactions [begin, end) of `db` as the next
  /// window, then publishes the new generation. Returns the new window
  /// id. This is the incremental (iPARAS) build step: prior windows are
  /// never revisited.
  WindowId AppendWindow(const TransactionDatabase& db, size_t begin,
                        size_t end);

  /// Installs a window whose rules were mined elsewhere, then publishes.
  /// The caller guarantees the rules are exactly those passing this
  /// builder's floors over a window of `total_transactions` transactions.
  WindowId AppendPrecomputedWindow(uint64_t total_transactions,
                                   const std::vector<PrecomputedRule>& rules);

  /// Appends every window of an evolving database. With
  /// Options::parallelism > 1, independent windows are mined and
  /// EPS-indexed concurrently and committed in window order. The new
  /// windows become visible to readers atomically, as ONE new generation
  /// published after the last window's commit.
  void BuildAll(const EvolvingDatabase& data);

  /// Attaches the write-ahead log in `dir`, creating it if absent. An
  /// existing log must carry this builder's construction options; its
  /// records are first replayed into the snapshot (windows the builder
  /// already has are skipped, a window past the next id is a typed gap
  /// error). After a successful attach every committed window is
  /// appended to the log and fdatasync'd before the committing call
  /// returns. NOT safe concurrently with writers or another AttachWal;
  /// call once, before ingestion starts.
  Expected<WalReplayStats, LoadError> AttachWal(const std::string& dir);

  /// Resets the attached log to just its header (no-op without one).
  /// Call only after the logged windows became durable elsewhere —
  /// i.e. right after a successful AppendKnowledgeBaseDir checkpoint.
  std::optional<LoadError> TruncateWal();

  /// True once AttachWal has succeeded (or Options::wal_dir was set).
  bool wal_attached() const { return wal_ != nullptr; }

  /// Pins and returns the current generation. Lock-free; safe from any
  /// thread at any time, including while a writer is mid-append.
  std::shared_ptr<const KnowledgeBaseSnapshot> snapshot() const {
    return current_.load(std::memory_order_acquire);
  }

  /// The published generation number (0 = empty initial snapshot).
  uint64_t generation() const { return snapshot()->generation(); }

  /// --- Durable watermark ------------------------------------------------
  /// Publication makes a window visible BEFORE its WAL record is
  /// fdatasync'd (both under the commit mutex), so a plain snapshot()
  /// can briefly expose a window a crash could still lose. Replication
  /// must not: a follower that replayed such a window would diverge from
  /// the recovered primary. The durable watermark trails publication by
  /// exactly that fsync: windows below it are safe to stream. Without a
  /// WAL every published window counts (there is no stronger durability
  /// to wait for).

  /// Windows durably acked so far. Lock-free; safe from any thread.
  uint32_t durable_window_count() const {
    return durable_windows_.load(std::memory_order_acquire);
  }

  /// Blocks until durable_window_count() > floor or `timeout` elapses;
  /// returns the current count either way. This is how a replication
  /// stream tails new windows without polling.
  uint32_t WaitDurableWindowsAbove(uint32_t floor,
                                   std::chrono::milliseconds timeout) const;

  /// --- Quiescent accessors ----------------------------------------------
  /// Direct views of the builder's working state, for offline tooling
  /// (benches, build-stats reports). Unlike snapshot(), these are NOT
  /// synchronized with concurrent appends — use them only when no writer
  /// is active, or go through snapshot().

  const RuleCatalog& catalog() const { return *catalog_; }
  const TarArchive& archive() const { return archive_; }
  const WindowSegment& segment(WindowId w) const;
  uint32_t window_count() const {
    return static_cast<uint32_t>(segments_.size());
  }
  const std::vector<WindowBuildStats>& build_stats() const { return stats_; }
  const Options& options() const { return options_; }
  size_t IndexBytes() const;

 private:
  /// One window's mining output, produced off-thread by the parallel
  /// build and handed to the ordered commit stage.
  struct MinedWindow {
    uint64_t total_transactions = 0;
    uint64_t floor_count = 0;
    std::vector<MinedRule> rules;
    double itemset_seconds = 0;
    double rule_seconds = 0;
    size_t itemset_count = 0;
  };

  /// Stage 1: mines transactions [begin, end) at the floors. Touches no
  /// builder state besides (immutable) options, so any thread may run it.
  MinedWindow MineWindowSlice(const TransactionDatabase& db, size_t begin,
                              size_t end, ThreadPool* intra_pool) const;

  /// Stage 2 core: interns `rules` and appends their counts to the
  /// working archive for `window`. Must run serialized, in window order —
  /// this is what keeps RuleIds deterministic.
  std::vector<WindowIndex::Entry> InternAndArchive(
      WindowId window, const std::vector<MinedRule>& rules);

  /// Stages 2+3 under the commit mutex: commit `mined` as the next
  /// window, build its EPS slice, and publish the new generation.
  WindowId CommitAndPublish(MinedWindow mined);

  /// Appends windows [first, window_count()) to the attached WAL,
  /// fdatasync'd, reading their bytes from the just-published snapshot.
  /// No-op without a WAL; aborts if the log cannot be written — the
  /// windows are already visible in memory, and returning success
  /// without durability would break the ack contract. Commit mutex must
  /// be held.
  void LogWindowsLocked(WindowId first);

  /// Advances the durable watermark to every committed window and wakes
  /// waiting replication streams. Call after LogWindowsLocked (commit
  /// mutex must be held).
  void MarkDurableLocked();

  /// Appends `segment` to the working state and publishes a new
  /// generation (commit mutex must be held).
  void PublishLocked(std::shared_ptr<const WindowSegment> segment);
  /// Swaps in a snapshot of the current working state (commit mutex must
  /// be held). `swaps` counts publications after the initial one.
  void PublishSnapshotLocked();

  /// Registers instruments in options_.metrics (no-op when null).
  void RegisterMetrics();
  /// Refreshes the build/size gauges from stats_/archive_/segments_
  /// (no-op when the registry is null; commit mutex must be held).
  void UpdateBuildMetrics();

  /// Build-side instrument pointers, all null when Options::metrics is
  /// null (the null sink).
  struct BuilderMetrics {
    obs::Gauge* build_itemset_seconds = nullptr;
    obs::Gauge* build_rule_seconds = nullptr;
    obs::Gauge* build_archive_seconds = nullptr;
    obs::Gauge* build_index_seconds = nullptr;
    obs::Gauge* build_windows = nullptr;
    obs::Gauge* build_rules = nullptr;
    obs::Gauge* build_regions = nullptr;
    obs::Gauge* archive_payload_bytes = nullptr;
    obs::Gauge* archive_entries = nullptr;
    obs::Gauge* index_bytes = nullptr;
    obs::Gauge* kb_generation = nullptr;
    obs::Counter* kb_swaps = nullptr;
  };

  Options options_;
  /// Non-null iff the effective parallelism is > 1; owns the build worker
  /// threads. Queries never touch it.
  std::unique_ptr<ThreadPool> pool_;
  /// Serializes writers (append/build calls) and publication.
  std::mutex commit_mutex_;
  /// Master catalog, shared with every published snapshot (append-only,
  /// internally synchronized).
  std::shared_ptr<RuleCatalog> catalog_;
  /// Working archive; every published snapshot gets an immutable copy.
  TarArchive archive_;
  /// Mirrors the archive as hierarchical partial sums; every published
  /// snapshot gets an immutable tree (series shared copy-on-write).
  RollUpTreeBuilder tree_builder_;
  /// All committed segments, oldest first (each immutable once pushed).
  std::vector<std::shared_ptr<const WindowSegment>> segments_;
  std::vector<WindowBuildStats> stats_;
  uint64_t generation_ = 0;
  /// The RCU publication point: readers load, the writer stores.
  std::atomic<std::shared_ptr<const KnowledgeBaseSnapshot>> current_;
  /// Write-ahead log; null until AttachWal succeeds. Written only under
  /// the commit mutex, after each publication.
  std::unique_ptr<WalWriter> wal_;
  /// Windows whose WAL records are fdatasync'd (== window count when no
  /// WAL is attached). Readers poll the atomic; waiters park on the cv.
  std::atomic<uint32_t> durable_windows_{0};
  mutable std::mutex durable_mutex_;
  mutable std::condition_variable durable_cv_;
  BuilderMetrics metrics_;
};

}  // namespace tara

#endif  // TARA_CORE_KB_BUILDER_H_
