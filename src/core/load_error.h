#ifndef TARA_CORE_LOAD_ERROR_H_
#define TARA_CORE_LOAD_ERROR_H_

#include <ostream>
#include <string>
#include <string_view>

namespace tara {

/// Why a serialized knowledge base could not be loaded. The loaders
/// (LoadKnowledgeBase, LoadKnowledgeBaseDir, ...) treat their input as
/// untrusted bytes and return one of these (inside an Expected) instead
/// of aborting: a corrupt or mismatched file is an operational problem
/// the calling process decides how to survive — fall back to a rebuild,
/// skip the cache, or report and exit cleanly.
struct LoadError {
  enum class Code {
    /// The underlying stream/file could not be opened or read.
    kIoError,
    /// The bytes do not start with a TARA knowledge-base magic.
    kBadMagic,
    /// A TARA magic with a format version this build cannot read.
    kBadVersion,
    /// The stream ended mid-structure (truncated varint, short field,
    /// or fewer bytes than the manifest promised).
    kTruncated,
    /// The manifest is self-inconsistent (impossible counts, watermarks
    /// that do not increase, ...).
    kBadManifest,
    /// A window segment's bytes do not match the manifest (checksum or
    /// size mismatch, rule ids outside the segment's watermark range).
    kCorruptSegment,
    /// Well-formed knowledge base followed by unexpected extra bytes.
    kTrailingBytes,
  };

  Code code = Code::kIoError;
  /// Actionable description naming the offending file/offset/field.
  std::string message;
};

/// Stable identifier string of a code ("bad_magic", ...), used in CLI
/// output and tests.
std::string_view LoadErrorCodeName(LoadError::Code code);

/// gtest-friendly printing.
std::ostream& operator<<(std::ostream& out, const LoadError& error);

}  // namespace tara

#endif  // TARA_CORE_LOAD_ERROR_H_
