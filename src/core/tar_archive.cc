#include "core/tar_archive.h"

#include <algorithm>

#include "common/logging.h"
#include "core/decode_kernels.h"

namespace tara {

RollUpBound FinishRollUp(const RollUpAggregate& agg) {
  RollUpBound bound;
  bound.missing_windows = agg.missing_windows;
  if (agg.total > 0) {
    bound.support_lo = static_cast<double>(agg.known_rule) / agg.total;
    bound.support_hi =
        static_cast<double>(agg.known_rule + agg.missing_slack) / agg.total;
  }
  // Confidence lower bound: rule absent in missing windows while the
  // antecedent could fill them entirely. Upper bound: rule count at the
  // floor slack with antecedent no larger than that.
  const uint64_t lo_den = agg.known_ant + agg.missing_size;
  if (lo_den > 0) {
    bound.confidence_lo = static_cast<double>(agg.known_rule) / lo_den;
  }
  const uint64_t hi_num = agg.known_rule + agg.missing_slack;
  const uint64_t hi_den = agg.known_ant + agg.missing_slack;
  if (hi_den > 0) {
    bound.confidence_hi = static_cast<double>(hi_num) / hi_den;
  }
  return bound;
}

void TarArchive::RegisterWindow(WindowId window, uint64_t transaction_count,
                                uint64_t floor_count,
                                double confidence_floor) {
  TARA_CHECK_EQ(window, window_sizes_.size())
      << "windows must be registered consecutively";
  TARA_CHECK(confidence_floor >= 0.0 && confidence_floor <= 1.0);
  window_sizes_.push_back(transaction_count);
  floor_counts_.push_back(floor_count);
  confidence_floors_.push_back(confidence_floor);
}

void TarArchive::Add(RuleId rule, WindowId window, uint64_t rule_count,
                     uint64_t antecedent_count) {
  TARA_CHECK_LT(window, window_sizes_.size()) << "unregistered window";
  TARA_CHECK(rule_count > 0 && antecedent_count >= rule_count);
  if (rule >= streams_.size()) streams_.resize(rule + 1);
  RuleStream& s = streams_[rule];
  const size_t before = s.bytes.size();
  if (s.empty) {
    varint::EncodeU64(window, &s.bytes);
    varint::EncodeU64(rule_count, &s.bytes);
    varint::EncodeU64(antecedent_count, &s.bytes);
    s.empty = false;
  } else {
    TARA_CHECK_GT(window, s.last_window) << "entries must advance in time";
    varint::EncodeU64(window - s.last_window, &s.bytes);
    varint::EncodeS64(static_cast<int64_t>(rule_count) -
                          static_cast<int64_t>(s.last_rule_count),
                      &s.bytes);
    varint::EncodeS64(static_cast<int64_t>(antecedent_count) -
                          static_cast<int64_t>(s.last_antecedent_count),
                      &s.bytes);
  }
  s.last_window = window;
  s.last_rule_count = rule_count;
  s.last_antecedent_count = antecedent_count;
  ++s.entries;
  payload_bytes_ += s.bytes.size() - before;
  ++entry_count_;
}

std::span<const ArchiveEntry> TarArchive::DecodeInto(
    RuleId rule, DecodeArena& arena) const {
  if (rule >= streams_.size() || streams_[rule].empty) return {};
  const RuleStream& s = streams_[rule];
  const decode::DecodeKernel& kernel = decode::ActiveDecodeKernel();
  std::span<ArchiveEntry> out = arena.AllocSpan<ArchiveEntry>(s.entries);
  std::span<uint64_t> scratch;
  if (kernel.needs_scratch) {
    scratch = arena.AllocSpan<uint64_t>(
        decode::MaxValuesForStream(s.bytes.size()));
  }
  const decode::DecodeResult result =
      kernel.decode(s.bytes.data(), s.bytes.size(), out.data(), out.size(),
                    scratch.data(), scratch.size());
  // Internal streams are valid by construction (Add is the only writer);
  // anything else is memory corruption, not a recoverable input error.
  TARA_CHECK(result.status == decode::Status::kOk &&
             result.entries == s.entries)
      << "corrupt rule stream: " << decode::StatusName(result.status);
  return out;
}

std::vector<ArchiveEntry> TarArchive::Decode(RuleId rule) const {
  DecodeArena arena;
  const std::span<const ArchiveEntry> entries = DecodeInto(rule, arena);
  return std::vector<ArchiveEntry>(entries.begin(), entries.end());
}

std::optional<ArchiveEntry> TarArchive::EntryFor(RuleId rule,
                                                 WindowId window) const {
  std::optional<ArchiveEntry> found;
  VisitEntries(rule, [&](const ArchiveEntry& e) {
    if (e.window == window) {
      found = e;
      return false;
    }
    return e.window < window;  // series is window-ordered: stop once past
  });
  return found;
}

RollUpBound TarArchive::RollUp(RuleId rule, std::span<const WindowId> windows,
                               DecodeArena* scratch) const {
  DecodeArena local;
  DecodeArena& arena = scratch != nullptr ? *scratch : local;
  const std::span<const ArchiveEntry> series = DecodeInto(rule, arena);

  RollUpAggregate agg;
  for (WindowId w : windows) {
    TARA_CHECK_LT(w, window_sizes_.size());
    agg.total += window_sizes_[w];
    const auto it = std::lower_bound(
        series.begin(), series.end(), w,
        [](const ArchiveEntry& e, WindowId target) { return e.window < target; });
    if (it != series.end() && it->window == w) {
      agg.known_rule += it->rule_count;
      agg.known_ant += it->antecedent_count;
    } else {
      ++agg.missing_windows;
      agg.missing_slack += UnarchivedCountSlack(
          floor_counts_[w], confidence_floors_[w], window_sizes_[w]);
      agg.missing_size += window_sizes_[w];
    }
  }
  return FinishRollUp(agg);
}

uint64_t TarArchive::window_size(WindowId w) const {
  TARA_CHECK_LT(w, window_sizes_.size());
  return window_sizes_[w];
}

uint64_t TarArchive::floor_count(WindowId w) const {
  TARA_CHECK_LT(w, floor_counts_.size());
  return floor_counts_[w];
}

double TarArchive::confidence_floor(WindowId w) const {
  TARA_CHECK_LT(w, confidence_floors_.size());
  return confidence_floors_[w];
}

size_t TarArchive::rule_count() const {
  size_t n = 0;
  for (const RuleStream& s : streams_) n += s.empty ? 0 : 1;
  return n;
}

}  // namespace tara
