#include "core/tar_archive.h"

#include <algorithm>

#include "common/logging.h"
#include "common/varint.h"

namespace tara {

void TarArchive::RegisterWindow(WindowId window, uint64_t transaction_count,
                                uint64_t floor_count,
                                double confidence_floor) {
  TARA_CHECK_EQ(window, window_sizes_.size())
      << "windows must be registered consecutively";
  TARA_CHECK(confidence_floor >= 0.0 && confidence_floor <= 1.0);
  window_sizes_.push_back(transaction_count);
  floor_counts_.push_back(floor_count);
  confidence_floors_.push_back(confidence_floor);
}

void TarArchive::Add(RuleId rule, WindowId window, uint64_t rule_count,
                     uint64_t antecedent_count) {
  TARA_CHECK_LT(window, window_sizes_.size()) << "unregistered window";
  TARA_CHECK(rule_count > 0 && antecedent_count >= rule_count);
  if (rule >= streams_.size()) streams_.resize(rule + 1);
  RuleStream& s = streams_[rule];
  const size_t before = s.bytes.size();
  if (s.empty) {
    varint::EncodeU64(window, &s.bytes);
    varint::EncodeU64(rule_count, &s.bytes);
    varint::EncodeU64(antecedent_count, &s.bytes);
    s.empty = false;
  } else {
    TARA_CHECK_GT(window, s.last_window) << "entries must advance in time";
    varint::EncodeU64(window - s.last_window, &s.bytes);
    varint::EncodeS64(static_cast<int64_t>(rule_count) -
                          static_cast<int64_t>(s.last_rule_count),
                      &s.bytes);
    varint::EncodeS64(static_cast<int64_t>(antecedent_count) -
                          static_cast<int64_t>(s.last_antecedent_count),
                      &s.bytes);
  }
  s.last_window = window;
  s.last_rule_count = rule_count;
  s.last_antecedent_count = antecedent_count;
  payload_bytes_ += s.bytes.size() - before;
  ++entry_count_;
}

std::vector<ArchiveEntry> TarArchive::Decode(RuleId rule) const {
  std::vector<ArchiveEntry> out;
  if (rule >= streams_.size() || streams_[rule].empty) return out;
  const RuleStream& s = streams_[rule];
  const uint8_t* data = s.bytes.data();
  const size_t size = s.bytes.size();
  size_t pos = 0;
  // First entry is absolute.
  ArchiveEntry entry;
  entry.window = static_cast<WindowId>(varint::DecodeU64(data, size, &pos));
  entry.rule_count = varint::DecodeU64(data, size, &pos);
  entry.antecedent_count = varint::DecodeU64(data, size, &pos);
  out.push_back(entry);
  while (pos < size) {
    entry.window += static_cast<WindowId>(varint::DecodeU64(data, size, &pos));
    entry.rule_count = static_cast<uint64_t>(
        static_cast<int64_t>(entry.rule_count) +
        varint::DecodeS64(data, size, &pos));
    entry.antecedent_count = static_cast<uint64_t>(
        static_cast<int64_t>(entry.antecedent_count) +
        varint::DecodeS64(data, size, &pos));
    out.push_back(entry);
  }
  return out;
}

std::optional<ArchiveEntry> TarArchive::EntryFor(RuleId rule,
                                                 WindowId window) const {
  for (const ArchiveEntry& e : Decode(rule)) {
    if (e.window == window) return e;
    if (e.window > window) break;
  }
  return std::nullopt;
}

RollUpBound TarArchive::RollUp(RuleId rule,
                               const std::vector<WindowId>& windows) const {
  RollUpBound bound;
  const std::vector<ArchiveEntry> series = Decode(rule);

  uint64_t known_rule = 0;
  uint64_t known_ant = 0;
  uint64_t missing_rule_slack = 0;  // max undetected count in missing windows
  uint64_t missing_size = 0;        // transactions in missing windows
  uint64_t total = 0;

  for (WindowId w : windows) {
    TARA_CHECK_LT(w, window_sizes_.size());
    total += window_sizes_[w];
    const auto it = std::find_if(
        series.begin(), series.end(),
        [w](const ArchiveEntry& e) { return e.window == w; });
    if (it != series.end()) {
      known_rule += it->rule_count;
      known_ant += it->antecedent_count;
    } else {
      ++bound.missing_windows;
      // Absence means support below the count floor OR confidence below
      // the confidence floor; the undetected count is bounded by the
      // larger escape hatch (a confident-but-rare rule by floor_count - 1,
      // a frequent-but-unconfident one by conf_floor * |D_w|).
      const uint64_t floor = floor_counts_[w];
      const uint64_t support_slack = floor > 0 ? floor - 1 : 0;
      const uint64_t confidence_slack = static_cast<uint64_t>(
          confidence_floors_[w] * static_cast<double>(window_sizes_[w]));
      missing_rule_slack += std::max(support_slack, confidence_slack);
      missing_size += window_sizes_[w];
    }
  }

  if (total > 0) {
    bound.support_lo = static_cast<double>(known_rule) / total;
    bound.support_hi =
        static_cast<double>(known_rule + missing_rule_slack) / total;
  }
  // Confidence lower bound: rule absent in missing windows while the
  // antecedent could fill them entirely. Upper bound: rule count at the
  // floor slack with antecedent no larger than that.
  const uint64_t lo_den = known_ant + missing_size;
  if (lo_den > 0) {
    bound.confidence_lo = static_cast<double>(known_rule) / lo_den;
  }
  const uint64_t hi_num = known_rule + missing_rule_slack;
  const uint64_t hi_den = known_ant + missing_rule_slack;
  if (hi_den > 0) {
    bound.confidence_hi = static_cast<double>(hi_num) / hi_den;
  }
  return bound;
}

uint64_t TarArchive::window_size(WindowId w) const {
  TARA_CHECK_LT(w, window_sizes_.size());
  return window_sizes_[w];
}

uint64_t TarArchive::floor_count(WindowId w) const {
  TARA_CHECK_LT(w, floor_counts_.size());
  return floor_counts_[w];
}

size_t TarArchive::rule_count() const {
  size_t n = 0;
  for (const RuleStream& s : streams_) n += s.empty ? 0 : 1;
  return n;
}

}  // namespace tara
