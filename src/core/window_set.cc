#include "core/window_set.h"

#include <algorithm>

#include "common/logging.h"

namespace tara {

WindowSet::WindowSet(std::vector<WindowId> ids, uint32_t window_count)
    : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  if (!ids_.empty()) {
    TARA_CHECK_LT(ids_.back(), window_count)
        << "WindowSet refers to window " << ids_.back()
        << " but only windows [0, " << window_count << ") exist";
  }
}

WindowSet WindowSet::All(uint32_t window_count) {
  std::vector<WindowId> ids(window_count);
  for (uint32_t w = 0; w < window_count; ++w) ids[w] = w;
  return WindowSet(std::move(ids), window_count);
}

WindowSet WindowSet::Range(WindowId begin, WindowId end,
                           uint32_t window_count) {
  TARA_CHECK_LE(begin, end) << "inverted window range";
  TARA_CHECK_LE(end, window_count)
      << "window range end " << end << " exceeds window count "
      << window_count;
  std::vector<WindowId> ids;
  ids.reserve(end - begin);
  for (WindowId w = begin; w < end; ++w) ids.push_back(w);
  return WindowSet(std::move(ids), window_count);
}

WindowSet WindowSet::Single(WindowId w, uint32_t window_count) {
  return WindowSet({w}, window_count);
}

bool WindowSet::contains(WindowId w) const {
  return std::binary_search(ids_.begin(), ids_.end(), w);
}

}  // namespace tara
