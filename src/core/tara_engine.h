#ifndef TARA_CORE_TARA_ENGINE_H_
#define TARA_CORE_TARA_ENGINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/expected.h"
#include "common/thread_pool.h"
#include "core/query_error.h"
#include "core/rule_catalog.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "core/trajectory.h"
#include "core/window_set.h"
#include "mining/frequent_itemset.h"
#include "mining/rule_generation.h"
#include "obs/metrics.h"
#include "obs/query_span.h"
#include "txdb/evolving_database.h"

namespace tara {

/// A (minimum support, minimum confidence) query setting.
struct ParameterSetting {
  double min_support = 0.0;
  double min_confidence = 0.0;
};

/// How a multi-window predicate combines per-window validity.
enum class MatchMode {
  kSingle,  ///< valid in at least one of the windows (union)
  kExact,   ///< valid in every window (intersection)
};

/// Label of an online operation, used for per-kind latency series
/// ("tara.query.<name>.latency_ns") and per-kind result typing.
enum class QueryKind : int {
  kMineWindow = 0,  ///< single-window mining
  kMineWindows,     ///< multi-window mining (union/intersection)
  kTrajectory,      ///< Q1 trajectory query
  kCompare,         ///< Q2 ruleset comparison
  kRegion,          ///< Q3 stable-region recommendation
  kMeasures,        ///< Q4 evolving-behavior measures
  kContent,         ///< Q5 content query
  kContentView,     ///< TARA-S merged item→rules view
  kRollUpRule,      ///< roll-up of a single rule
  kRollUpMine,      ///< roll-up mining over a window union
};

inline constexpr int kQueryKindCount = 10;

/// The metric label of a query kind ("mine_window", "trajectory", ...).
std::string_view QueryKindName(QueryKind kind);

/// The TARA framework: offline knowledge-base construction (Association
/// Generator + Knowledge Base Constructor of Figure 2) plus the online
/// explorer operations (Q1-Q5, roll-up/drill-down).
///
/// Offline, each arriving window is mined once with the floor thresholds;
/// the produced rules are interned in the RuleCatalog, their counts
/// archived in the TarArchive, and the window's EPS slice built as a
/// WindowIndex. Online queries touch only these structures — never the raw
/// data — with thresholds at or above the floors.
///
/// ## Error contract
///
/// Every online operation returns Expected<Result, QueryError>: a
/// malformed *request* (threshold below the generation floor, bad window
/// id, empty window set, unknown rule, Q5 without a content index) is
/// reported as a QueryError value, never an abort, so one bad client
/// request cannot take down a serving process. CHECK aborts remain for
/// internal invariants and construction-time contracts (an out-of-range
/// id passed to MakeWindowSet is the caller's bug, caught at
/// construction). One-shot tools may call .value(), which aborts with the
/// error message on misuse.
///
/// ## Observability
///
/// When Options::metrics names a registry, the engine registers per-kind
/// query latency histograms, ok/rejected counters, and build/size gauges
/// (see DESIGN.md, "Observability"). All recording is relaxed-atomic and
/// allocation-free; with metrics == nullptr every instrument pointer is
/// null and spans skip the clock read entirely (the null sink).
///
/// ## Threading model
///
/// The engine has two phases with different rules (see DESIGN.md,
/// "Threading model"):
///
/// - **Build phase** (AppendWindow / AppendPrecomputedWindow / BuildAll):
///   single external caller. With Options::parallelism > 1 the engine
///   parallelizes internally — independent windows are mined and EPS-indexed
///   on a private thread pool while catalog interning and archive appends go
///   through a serialized, window-ordered commit stage, so RuleIds and the
///   serialized knowledge base are byte-identical to a sequential build.
/// - **Query phase**: once the build calls have returned, every const
///   method (MineWindow(s), TrajectoryQuery, CompareSettings,
///   RecommendRegion, RuleMeasures, ContentQuery, ContentView, RollUpRule,
///   MineRolledUp, and all accessors) is safe for any number of concurrent
///   callers. None of them mutates engine state — metric recording goes to
///   relaxed atomics only, there is no lazy caching on the const path, and
///   this is enforced by the concurrent-query stress test run under
///   ThreadSanitizer (with metrics enabled).
///
/// Interleaving build calls with queries from other threads is NOT
/// supported.
class TaraEngine {
 public:
  struct Options {
    /// Generation floors (Table 4): the per-window offline mining
    /// thresholds. Each window is mined exactly once at these floors, so
    /// they bound the online parameter space from below: every online
    /// query must use minsupp/minconf at or above them (checked per
    /// query), and the roll-up interval bounds widen by at most one floor
    /// count per missing window. Valid ranges: min_support_floor in
    /// (0, 1], min_confidence_floor in [0, 1].
    double min_support_floor = 0.001;
    double min_confidence_floor = 0.1;
    /// Cap on frequent-itemset cardinality (0 = unlimited, otherwise
    /// >= 2; a cap of 1 would admit no rules at all).
    uint32_t max_itemset_size = 0;
    /// Build per-window item→rule inverted indexes (the TARA-S variant)
    /// enabling Q5 content queries at extra build cost.
    bool build_content_index = false;
    /// Worker threads for the offline build: BuildAll overlaps whole
    /// windows, AppendWindow parallelizes its intra-window hot loops
    /// (rule derivation, stable-region sort). 1 = fully sequential
    /// (default), 0 = use the hardware concurrency. Any value yields a
    /// byte-identical serialized knowledge base; this is an execution
    /// knob, not knowledge-base state, and is not serialized.
    uint32_t parallelism = 1;
    /// Destination for the engine's instruments, or nullptr for the null
    /// sink (no clocks, no atomics on the query path). The registry must
    /// outlive the engine. Like parallelism this is a runtime knob, not
    /// knowledge-base state, and is not serialized. Engines sharing a
    /// registry aggregate into the same named series.
    obs::MetricsRegistry* metrics = nullptr;

    /// Returns an actionable description of the first invalid field, or
    /// nullopt when the options are usable. The TaraEngine constructor
    /// calls this and aborts with the returned message, replacing what
    /// used to be scattered CHECK failures at first use.
    std::optional<std::string> Validate() const;
  };

  /// Per-window offline timing/size breakdown (Figure 9's stacked tasks).
  struct WindowBuildStats {
    WindowId window = 0;
    double itemset_seconds = 0;  ///< frequent itemset generation
    double rule_seconds = 0;     ///< rule derivation
    double archive_seconds = 0;  ///< TAR Archive append
    double index_seconds = 0;    ///< EPS (stable region) index build
    size_t itemset_count = 0;
    size_t rule_count = 0;
    size_t location_count = 0;
    size_t region_count = 0;

    double total_seconds() const {
      return itemset_seconds + rule_seconds + archive_seconds + index_seconds;
    }
  };

  /// Result of the Q1 trajectory query: the rules matching the anchor
  /// setting plus each rule's trajectory over the horizon windows.
  struct TrajectoryQueryResult {
    std::vector<RuleId> rules;
    std::vector<Trajectory> trajectories;
  };

  /// Result of the Q2 ruleset comparison.
  struct RulesetDiff {
    std::vector<RuleId> only_first;
    std::vector<RuleId> only_second;
  };

  /// Result of mining over a rolled-up window union: rules certainly valid
  /// (interval lower bounds pass) and rules whose validity depends on the
  /// sub-floor windows (only upper bounds pass).
  struct RolledUpRules {
    std::vector<RuleId> certain;
    std::vector<RuleId> possible;
  };

  explicit TaraEngine(const Options& options);

  /// Mines and indexes transactions [begin, end) of `db` as the next
  /// window. Returns the new window id. This is the incremental (iPARAS)
  /// build step: prior windows are never revisited.
  WindowId AppendWindow(const TransactionDatabase& db, size_t begin,
                        size_t end);

  /// A rule with counts produced outside the engine (an external miner, or
  /// the serialization loader).
  struct PrecomputedRule {
    Rule rule;
    uint64_t rule_count = 0;
    uint64_t antecedent_count = 0;
  };

  /// Installs a window whose rules were mined elsewhere. The caller
  /// guarantees the rules are exactly those passing this engine's floors
  /// over a window of `total_transactions` transactions. Used by the
  /// knowledge-base loader and by callers plugging in their own miner.
  WindowId AppendPrecomputedWindow(uint64_t total_transactions,
                                   const std::vector<PrecomputedRule>& rules);

  /// Appends every window of an evolving database. With
  /// Options::parallelism > 1, independent windows are mined and
  /// EPS-indexed concurrently and committed in window order.
  void BuildAll(const EvolvingDatabase& data);

  uint32_t window_count() const {
    return static_cast<uint32_t>(windows_.size());
  }

  /// --- WindowSet construction --------------------------------------------

  /// A validated WindowSet over this engine's windows. Aborts if any id is
  /// out of range.
  WindowSet MakeWindowSet(std::vector<WindowId> ids) const {
    return WindowSet(std::move(ids), window_count());
  }

  /// Every window of the engine, oldest first.
  WindowSet AllWindows() const { return WindowSet::All(window_count()); }

  /// The newest `count` windows (fewer if the engine has fewer).
  WindowSet RecentWindows(uint32_t count) const {
    const uint32_t n = window_count();
    return WindowSet::Range(count >= n ? 0 : n - count, n, n);
  }

  /// --- Online operations -------------------------------------------------
  /// All of these validate the request and return a QueryError (never
  /// abort) on invalid thresholds, window ids, empty window sets, or
  /// unknown rules — see the class-level error contract.

  /// Rules valid in window `w` under `setting`.
  Expected<std::vector<RuleId>, QueryError> MineWindow(
      WindowId w, const ParameterSetting& setting) const;

  /// Rules valid across `windows` under `setting`, combined per `mode`.
  /// Output is sorted by RuleId.
  Expected<std::vector<RuleId>, QueryError> MineWindows(
      const WindowSet& windows, const ParameterSetting& setting,
      MatchMode mode) const;

  /// Q1: rules matching `setting` in `anchor`, each with its trajectory
  /// over `horizon` (oldest window first).
  Expected<TrajectoryQueryResult, QueryError> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const WindowSet& horizon) const;

  /// Q2: symmetric difference of the rulesets of two settings over the same
  /// windows. Outputs sorted by RuleId.
  Expected<RulesetDiff, QueryError> CompareSettings(
      const ParameterSetting& first, const ParameterSetting& second,
      const WindowSet& windows, MatchMode mode) const;

  /// Q3: the time-aware stable region of `setting` in window `w` — the
  /// parameter recommendation primitive (any setting inside the region is
  /// equivalent; the region's upper corner is the tightest setting with the
  /// same result).
  Expected<RegionInfo, QueryError> RecommendRegion(
      WindowId w, const ParameterSetting& setting) const;

  /// Q4: evolving-behavior measures of a rule over `windows`.
  Expected<TrajectoryMeasures, QueryError> RuleMeasures(
      RuleId rule, const WindowSet& windows) const;

  /// Q5: rules valid under `setting` in window `w` containing all of
  /// `items`. Requires Options::build_content_index.
  Expected<std::vector<RuleId>, QueryError> ContentQuery(
      WindowId w, const Itemset& items,
      const ParameterSetting& setting) const;

  /// Builds the merged item→rules view of a window's result set — the
  /// region-index merge the TARA-S variant performs during Q1 (its extra
  /// online cost in Figures 7-8).
  Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
  ContentView(WindowId w, const ParameterSetting& setting) const;

  /// Roll-up: interval measures of `rule` over the union of `windows`.
  Expected<RollUpBound, QueryError> RollUpRule(
      RuleId rule, const WindowSet& windows) const;

  /// Roll-up mining: rules valid over the union of `windows` under
  /// `setting`, split into certain and possible per the interval bounds.
  Expected<RolledUpRules, QueryError> MineRolledUp(
      const WindowSet& windows, const ParameterSetting& setting) const;

  /// --- Accessors ----------------------------------------------------------

  const RuleCatalog& catalog() const { return catalog_; }
  const TarArchive& archive() const { return archive_; }
  const WindowIndex& window_index(WindowId w) const;
  /// The build inputs of a window (used by roll-up and serialization).
  const std::vector<WindowIndex::Entry>& window_entries(WindowId w) const;
  const std::vector<WindowBuildStats>& build_stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Approximate bytes of all EPS window indexes (Figure 12 bookkeeping).
  size_t IndexBytes() const;

 private:
  /// Instrument pointers, all null when Options::metrics is null (the
  /// null sink). Raw pointers into the registry; registration happens
  /// once in the constructor.
  struct EngineMetrics {
    std::array<obs::Histogram*, kQueryKindCount> latency{};
    obs::Counter* ok = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Gauge* build_itemset_seconds = nullptr;
    obs::Gauge* build_rule_seconds = nullptr;
    obs::Gauge* build_archive_seconds = nullptr;
    obs::Gauge* build_index_seconds = nullptr;
    obs::Gauge* build_windows = nullptr;
    obs::Gauge* build_rules = nullptr;
    obs::Gauge* build_regions = nullptr;
    obs::Gauge* archive_payload_bytes = nullptr;
    obs::Gauge* archive_entries = nullptr;
    obs::Gauge* index_bytes = nullptr;
  };

  /// One window's mining output, produced off-thread by the parallel build
  /// and handed to the ordered commit stage.
  struct MinedWindow {
    uint64_t total_transactions = 0;
    uint64_t floor_count = 0;
    std::vector<MinedRule> rules;
    double itemset_seconds = 0;
    double rule_seconds = 0;
    size_t itemset_count = 0;
  };

  /// Stage 1: mines transactions [begin, end) at the floors. Touches no
  /// engine state besides (immutable) options, so any thread may run it.
  MinedWindow MineWindowSlice(const TransactionDatabase& db, size_t begin,
                              size_t end, ThreadPool* intra_pool) const;

  /// Stage 2 core: interns `rules` and appends their counts to the archive
  /// for `window`. Must run serialized, in window order — this is what
  /// keeps RuleIds deterministic.
  std::vector<WindowIndex::Entry> InternAndArchive(
      WindowId window, const std::vector<MinedRule>& rules);

  /// Stages 2+3 for the sequential path: commit `mined` as the next window
  /// and build its EPS slice inline.
  WindowId CommitWindow(MinedWindow mined);

  /// --- Request validation (each returns the error, or nullopt) ----------
  std::optional<QueryError> ValidateSetting(
      const ParameterSetting& setting) const;
  std::optional<QueryError> ValidateWindow(WindowId w) const;
  std::optional<QueryError> ValidateWindows(const WindowSet& windows) const;
  std::optional<QueryError> ValidateRule(RuleId rule) const;

  /// Books a rejected request: cancels the latency span, bumps the
  /// rejected counter, and forwards the error for returning.
  QueryError Reject(obs::QuerySpan* span, QueryError error) const;
  void CountOk() const;

  /// Unvalidated single-window collect shared by the public entrypoints.
  std::vector<RuleId> CollectWindow(WindowId w,
                                    const ParameterSetting& setting) const;
  /// Unvalidated multi-window merge (the old MineWindows body).
  std::vector<RuleId> MineWindowsUnchecked(const WindowSet& windows,
                                           const ParameterSetting& setting,
                                           MatchMode mode) const;

  /// Registers instruments in options_.metrics (no-op when null).
  void RegisterMetrics();
  /// Refreshes the build/size gauges from stats_/archive_/windows_.
  void UpdateBuildMetrics();

  Options options_;
  /// Non-null iff the effective parallelism is > 1; owns the build worker
  /// threads. Queries never touch it.
  std::unique_ptr<ThreadPool> pool_;
  RuleCatalog catalog_;
  TarArchive archive_;
  std::vector<WindowIndex> windows_;
  /// Per-window build inputs kept for roll-up candidate enumeration.
  std::vector<std::vector<WindowIndex::Entry>> window_entries_;
  std::vector<WindowBuildStats> stats_;
  EngineMetrics metrics_;
};

}  // namespace tara

#endif  // TARA_CORE_TARA_ENGINE_H_
