#ifndef TARA_CORE_TARA_ENGINE_H_
#define TARA_CORE_TARA_ENGINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/expected.h"
#include "core/kb_builder.h"
#include "core/kb_snapshot.h"
#include "core/query_cache.h"
#include "core/query_error.h"
#include "core/query_kind.h"
#include "core/query_request.h"
#include "core/rule_catalog.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "core/trajectory.h"
#include "core/window_set.h"
#include "obs/metrics.h"
#include "obs/query_span.h"
#include "txdb/evolving_database.h"

namespace tara {

class MappedKb;

/// The TARA framework: offline knowledge-base construction (Association
/// Generator + Knowledge Base Constructor of Figure 2) plus the online
/// explorer operations (Q1-Q5, roll-up/drill-down).
///
/// The engine is a thin facade over two layers:
///
/// - a **KbBuilder** (the write side) that mines arriving windows,
///   interns their rules, appends the TAR Archive, builds each window's
///   EPS slice, and publishes every new generation of the knowledge base
///   with one atomic pointer swap;
/// - immutable **KnowledgeBaseSnapshot** values (the read side) that all
///   query code runs against. Every query method pins the current
///   generation for its duration; Snapshot() hands the same pin to
///   callers that want several queries answered from one consistent view.
///
/// The facade's own contribution is the observability layer (per-kind
/// latency spans, ok/rejected counters) and API stability: its public
/// surface predates the split and is preserved verbatim.
///
/// ## Error contract
///
/// Every online operation returns Expected<Result, QueryError>: a
/// malformed *request* (threshold below the generation floor, bad window
/// id, empty window set, unknown rule, Q5 without a content index) is
/// reported as a QueryError value, never an abort, so one bad client
/// request cannot take down a serving process. CHECK aborts remain for
/// internal invariants and construction-time contracts (an out-of-range
/// id passed to MakeWindowSet is the caller's bug, caught at
/// construction). One-shot tools may call .value(), which aborts with the
/// error message on misuse.
///
/// ## Observability
///
/// When Options::metrics names a registry, the engine registers per-kind
/// query latency histograms, ok/rejected counters, build/size gauges, and
/// the snapshot instruments `tara.kb.generation` (gauge) and
/// `tara.kb.swaps` (publication counter) — see DESIGN.md,
/// "Observability". With a query cache enabled the cache adds
/// `tara.cache.{hits,misses,evictions}` counters and a `tara.cache.bytes`
/// gauge. All recording is relaxed-atomic and allocation-free;
/// with metrics == nullptr every instrument pointer is null and spans
/// skip the clock read entirely (the null sink).
///
/// ## Threading model
///
/// Readers and the writer are decoupled by snapshot publication (see
/// DESIGN.md, "Threading model"):
///
/// - **Ingestion** (AppendWindow / AppendPrecomputedWindow / BuildAll):
///   one writer at a time (concurrent writer calls serialize on an
///   internal commit mutex). With Options::parallelism > 1 the builder
///   parallelizes internally — independent windows are mined and
///   EPS-indexed on a private thread pool while catalog interning and
///   archive appends go through a serialized, window-ordered commit
///   stage, so RuleIds and the serialized knowledge base are
///   byte-identical to a sequential build, on the bulk and the live path
///   alike.
/// - **Queries**: every const method (MineWindow(s), TrajectoryQuery,
///   CompareSettings, RecommendRegion, RuleMeasures, ContentQuery,
///   ContentView, RollUpRule, MineRolledUp) is safe for any number of
///   concurrent callers **at any time — including while ingestion is
///   running**. Each call pins the generation current at its start and
///   answers entirely from that immutable snapshot; a window committed
///   mid-query becomes visible to the *next* call. This is enforced by
///   the live-ingestion stress test (tests/test_live_ingestion.cc) run
///   under ThreadSanitizer.
/// - **Accessors** (catalog(), archive(), window_index(),
///   window_entries(), build_stats()): quiescent views of the builder's
///   working state for offline tooling. They are NOT synchronized with a
///   concurrent writer — under live ingestion, obtain a Snapshot() and
///   use its equivalents instead.
class TaraEngine {
 public:
  using Options = KbOptions;
  using WindowBuildStats = tara::WindowBuildStats;
  using PrecomputedRule = tara::PrecomputedRule;
  using TrajectoryQueryResult = tara::TrajectoryQueryResult;
  using RulesetDiff = tara::RulesetDiff;
  using RolledUpRules = tara::RolledUpRules;

  explicit TaraEngine(const Options& options);
  ~TaraEngine();
  TaraEngine(TaraEngine&&) noexcept;
  TaraEngine& operator=(TaraEngine&&) noexcept;

  /// Mines and indexes transactions [begin, end) of `db` as the next
  /// window and publishes the new generation. Returns the new window id.
  /// This is the incremental (iPARAS) build step: prior windows are never
  /// revisited. May run while any number of queries are in flight.
  WindowId AppendWindow(const TransactionDatabase& db, size_t begin,
                        size_t end);

  /// Installs a window whose rules were mined elsewhere. The caller
  /// guarantees the rules are exactly those passing this engine's floors
  /// over a window of `total_transactions` transactions. Used by the
  /// knowledge-base loader and by callers plugging in their own miner.
  WindowId AppendPrecomputedWindow(uint64_t total_transactions,
                                   const std::vector<PrecomputedRule>& rules);

  /// Appends every window of an evolving database. With
  /// Options::parallelism > 1, independent windows are mined and
  /// EPS-indexed concurrently and committed in window order. All new
  /// windows are published together as one new generation.
  void BuildAll(const EvolvingDatabase& data);

  /// --- Durability (write-ahead log) ---------------------------------------
  /// With a WAL attached, Append*/BuildAll return only after the new
  /// window's record is fdatasync'd to the log, so an ack sent after an
  /// append survives any crash: recovery (RecoverKnowledgeBase in
  /// kb_storage.h, or AttachWal over a loaded engine) replays the log
  /// tail and reproduces the acked state byte-for-byte.

  /// Attaches (creating if absent) the write-ahead log in `dir`,
  /// replaying any records it holds into this engine first. Call once,
  /// before ingestion starts; NOT safe concurrently with writers. On a
  /// mapped engine this first materializes every remaining window
  /// (replay needs the full catalog); decode failures come back as the
  /// LoadError instead of replaying.
  Expected<WalReplayStats, LoadError> AttachWal(const std::string& dir);

  /// Resets the attached log to its header (no-op without one). Call
  /// only right after the logged windows became durable via
  /// AppendKnowledgeBaseDir — that pair is the checkpoint step.
  std::optional<LoadError> TruncateWal() { return builder_->TruncateWal(); }

  /// True once a WAL is attached (Options::wal_dir or AttachWal).
  bool wal_attached() const { return builder_->wal_attached(); }

  /// Windows durably acked (WAL record fdatasync'd; every published
  /// window when no WAL is attached). Publication runs ahead of the
  /// fsync, so this can briefly trail window_count() — replication
  /// streams only below this watermark, because a window above it could
  /// still be lost to a crash and a follower that replayed it would
  /// diverge from the recovered primary.
  uint32_t durable_window_count() const {
    return builder_->durable_window_count();
  }

  /// Blocks until durable_window_count() > floor or `timeout` elapses;
  /// returns the current count either way (how replication streams tail
  /// new windows without polling).
  uint32_t WaitDurableWindowsAbove(uint32_t floor,
                                   std::chrono::milliseconds timeout) const {
    return builder_->WaitDurableWindowsAbove(floor, timeout);
  }

  /// Pins and returns the current knowledge-base generation: an immutable
  /// view offering the same query API (minus metric spans). Use this to
  /// answer several queries from one consistent state while ingestion
  /// continues, or to hold a generation alive across an append. On a
  /// mapped engine this materializes every remaining window first (the
  /// caller asked for the whole knowledge base) — aborting on corrupt
  /// storage, like any other load the engine cannot serve around.
  std::shared_ptr<const KnowledgeBaseSnapshot> Snapshot() const;

  /// The published generation number (0 = empty engine; each publication
  /// increments it). On a mapped engine the generation grows as windows
  /// materialize, exactly as it would during the eager load.
  uint64_t generation() const { return builder_->generation(); }

  /// Total windows of the knowledge base — on a mapped engine this is
  /// the manifest's count and does NOT materialize anything.
  uint32_t window_count() const;

  /// --- Zero-copy (mapped) knowledge bases ----------------------------------
  /// OpenKnowledgeBase(OpenMode::kMapped) plumbing — see kb_open.h for
  /// the user-facing story and kb_blocks.h for the storage format.

  /// Attaches a mapped TARAKB3 knowledge base to a freshly constructed,
  /// empty engine (aborts otherwise; call before any query or append).
  /// With `eager` every window is materialized now and a decode failure
  /// comes back as a typed error; without it, queries materialize the
  /// window prefix they need on demand and the first query to hit
  /// corrupt storage is rejected with QueryError::Code::kCorruptStorage
  /// (sticky: the unmaterialized tail stays unavailable, already-decoded
  /// windows keep serving).
  std::optional<LoadError> AttachMappedKb(std::shared_ptr<const MappedKb> kb,
                                          bool eager);

  /// True once no lazy materialization remains (trivially true for
  /// engines without a mapped knowledge base).
  bool fully_materialized() const;

  /// Windows decoded into the builder so far. On a lazily mapped engine
  /// this lags window_count() until queries (or Snapshot()) pull the
  /// rest in — the observable proof that mapped opens are lazy.
  uint32_t materialized_window_count() const {
    return builder_->snapshot()->window_count();
  }

  /// --- WindowSet construction --------------------------------------------

  /// A validated WindowSet over this engine's windows. Aborts if any id is
  /// out of range.
  WindowSet MakeWindowSet(std::vector<WindowId> ids) const {
    return WindowSet(std::move(ids), window_count());
  }

  /// Every window of the engine, oldest first.
  WindowSet AllWindows() const { return WindowSet::All(window_count()); }

  /// The newest `count` windows (fewer if the engine has fewer).
  WindowSet RecentWindows(uint32_t count) const {
    const uint32_t n = window_count();
    return WindowSet::Range(count >= n ? 0 : n - count, n, n);
  }

  /// --- Online operations -------------------------------------------------
  /// All of these validate the request and return a QueryError (never
  /// abort) on invalid thresholds, window ids, empty window sets, or
  /// unknown rules — see the class-level error contract. Each pins the
  /// current snapshot for its duration.

  /// Rules valid in window `w` under `setting`.
  Expected<std::vector<RuleId>, QueryError> MineWindow(
      WindowId w, const ParameterSetting& setting) const;

  /// Rules valid across `windows` under `setting`, combined per `mode`.
  /// Output is sorted by RuleId.
  Expected<std::vector<RuleId>, QueryError> MineWindows(
      const WindowSet& windows, const ParameterSetting& setting,
      MatchMode mode) const;

  /// Q1: rules matching `setting` in `anchor`, each with its trajectory
  /// over `horizon` (oldest window first).
  Expected<TrajectoryQueryResult, QueryError> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const WindowSet& horizon) const;

  /// Q2: symmetric difference of the rulesets of two settings over the same
  /// windows. Outputs sorted by RuleId.
  Expected<RulesetDiff, QueryError> CompareSettings(
      const ParameterSetting& first, const ParameterSetting& second,
      const WindowSet& windows, MatchMode mode) const;

  /// Q3: the time-aware stable region of `setting` in window `w` — the
  /// parameter recommendation primitive (any setting inside the region is
  /// equivalent; the region's upper corner is the tightest setting with the
  /// same result).
  Expected<RegionInfo, QueryError> RecommendRegion(
      WindowId w, const ParameterSetting& setting) const;

  /// Q4: evolving-behavior measures of a rule over `windows`.
  Expected<TrajectoryMeasures, QueryError> RuleMeasures(
      RuleId rule, const WindowSet& windows) const;

  /// Q5: rules valid under `setting` in window `w` containing all of
  /// `items`. Requires Options::build_content_index.
  Expected<std::vector<RuleId>, QueryError> ContentQuery(
      WindowId w, const Itemset& items,
      const ParameterSetting& setting) const;

  /// Builds the merged item→rules view of a window's result set — the
  /// region-index merge the TARA-S variant performs during Q1 (its extra
  /// online cost in Figures 7-8).
  Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
  ContentView(WindowId w, const ParameterSetting& setting) const;

  /// Roll-up: interval measures of `rule` over the union of `windows`.
  Expected<RollUpBound, QueryError> RollUpRule(
      RuleId rule, const WindowSet& windows) const;

  /// Roll-up mining: rules valid over the union of `windows` under
  /// `setting`, split into certain and possible per the interval bounds.
  Expected<RolledUpRules, QueryError> MineRolledUp(
      const WindowSet& windows, const ParameterSetting& setting) const;

  /// --- Uniform execution, batching, and the query cache -------------------
  /// Execute/ExecuteBatch are the serving fast path: the only entrypoints
  /// that consult the generation-pinned query cache (see query_cache.h).
  /// With Options::query_cache_bytes == 0 they behave exactly like the
  /// typed methods above (same validation, same QueryError codes) — the
  /// differential harness in tests/test_query_cache.cc enforces that the
  /// cached, batched, and uncached paths return byte-identical serialized
  /// results at every generation.

  /// Executes one request against the current generation, answering from
  /// the cache when enabled. Safe for any number of concurrent callers,
  /// including while ingestion runs.
  Expected<QueryResult, QueryError> Execute(const QueryRequest& request) const;

  /// Executes a batch against ONE pinned snapshot (every request sees the
  /// same generation, even if appends land mid-batch). Identical requests
  /// (by canonical bytes) are executed once; cache misses fan out across
  /// the engine's thread pool when Options::parallelism != 1. Results are
  /// positionally aligned with `requests`.
  std::vector<Expected<QueryResult, QueryError>> ExecuteBatch(
      std::span<const QueryRequest> requests) const;

  /// Resizes (or disables, with 0) the query cache, dropping all cached
  /// entries. NOT safe concurrently with in-flight Execute/ExecuteBatch
  /// calls — a serving process sizes the cache at construction via
  /// Options::query_cache_bytes; this setter exists for tools that load a
  /// knowledge base first and opt into caching afterwards.
  void SetQueryCacheBytes(size_t bytes);

  /// The cache, or nullptr when disabled. Exposed for stats reporting
  /// (hit rate, bytes); never needed for correctness.
  const QueryCache* query_cache() const { return cache_.get(); }

  /// --- Quiescent accessors ------------------------------------------------
  /// Views of the builder's working state. NOT synchronized with a
  /// concurrent writer; under live ingestion use Snapshot() instead. On
  /// a mapped engine these materialize every remaining window first
  /// (they expose the full working state).

  const RuleCatalog& catalog() const {
    EnsureAllOrDie();
    return builder_->catalog();
  }
  const TarArchive& archive() const {
    EnsureAllOrDie();
    return builder_->archive();
  }
  const WindowIndex& window_index(WindowId w) const {
    EnsureAllOrDie();
    return builder_->segment(w).index;
  }
  /// The build inputs of a window (used by roll-up and serialization).
  const std::vector<WindowIndex::Entry>& window_entries(WindowId w) const {
    EnsureAllOrDie();
    return builder_->segment(w).entries;
  }
  const std::vector<WindowBuildStats>& build_stats() const {
    return builder_->build_stats();
  }
  const Options& options() const { return builder_->options(); }

  /// Approximate bytes of all EPS window indexes (Figure 12 bookkeeping).
  size_t IndexBytes() const {
    EnsureAllOrDie();
    return builder_->IndexBytes();
  }

 private:
  /// Query-side instrument pointers, all null when Options::metrics is
  /// null (the null sink). Raw pointers into the registry; registration
  /// happens once in the constructor.
  struct EngineMetrics {
    std::array<obs::Histogram*, kQueryKindCount> latency{};
    obs::Counter* ok = nullptr;
    obs::Counter* rejected = nullptr;
  };

  /// Books the span/counters for a finished query: cancels the latency
  /// span and bumps `rejected` on an error, bumps `ok` otherwise, and
  /// forwards the result unchanged.
  template <typename T>
  Expected<T, QueryError> Finish(obs::QuerySpan* span,
                                 Expected<T, QueryError> result) const {
    if (result.has_value()) {
      if (metrics_.ok != nullptr) metrics_.ok->Increment();
    } else {
      span->Cancel();
      if (metrics_.rejected != nullptr) metrics_.rejected->Increment();
    }
    return result;
  }

  obs::QuerySpan Span(QueryKind kind) const {
    return obs::QuerySpan(metrics_.latency[static_cast<int>(kind)]);
  }

  /// Books a lazy-materialization failure as a rejected query.
  template <typename T>
  Expected<T, QueryError> Gated(obs::QuerySpan* span, QueryError error) const {
    return Finish(span, Expected<T, QueryError>(std::move(error)));
  }

  /// Registers query instruments in options.metrics (no-op when null).
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// --- Lazy materialization (mapped knowledge bases) -----------------------
  /// All gates are no-ops (one relaxed load) once materialization is
  /// complete or when no mapped knowledge base is attached. Lock order:
  /// the lazy mutex is taken strictly before the builder's commit mutex
  /// (materialization appends windows); pool workers never touch the
  /// lazy mutex.

  /// Materializes windows so the snapshot holds at least
  /// min(required, total) of them. Sticky-fails with kCorruptStorage.
  std::optional<QueryError> EnsureWindows(uint64_t required) const;
  /// Materializes through the window that interned `rule` (everything,
  /// when the manifest never heard of it, so the rejection matches an
  /// eager engine's byte for byte).
  std::optional<QueryError> EnsureRule(RuleId rule) const;
  /// The kind-aware gate Execute/ExecuteBatch use.
  std::optional<QueryError> EnsureForRequest(const QueryRequest& request) const;
  /// Full materialization for callers with no error channel (Snapshot,
  /// appends, quiescent accessors); aborts on corrupt storage.
  void EnsureAllOrDie() const;
  /// The mutex-held worker: two-phase decode (parallel structural parse,
  /// window-ordered resolve + append) of windows [materialized, need).
  std::optional<LoadError> MaterializeLocked(uint32_t need) const;

  /// unique_ptr so the engine stays movable (the builder holds mutexes
  /// and the atomic publication slot).
  std::unique_ptr<KbBuilder> builder_;
  EngineMetrics metrics_;
  /// Generation-pinned result cache; null when Options::query_cache_bytes
  /// is 0. unique_ptr keeps the engine movable (the cache holds mutexes).
  std::unique_ptr<QueryCache> cache_;
  /// Read-side pool for ExecuteBatch fan-out; created when the effective
  /// parallelism is > 1. Separate from the builder's pool so batch reads
  /// never queue behind mining tasks during live ingestion.
  std::unique_ptr<ThreadPool> query_pool_;
  /// Lazy-materialization state for a mapped knowledge base; null for
  /// eager engines (and reset once an eager attach finishes). mutable:
  /// const queries materialize windows on demand — logically the engine
  /// is unchanged (the same knowledge base, loaded further).
  struct LazyState;
  mutable std::unique_ptr<LazyState> lazy_;
};

}  // namespace tara

#endif  // TARA_CORE_TARA_ENGINE_H_
