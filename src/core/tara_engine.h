#ifndef TARA_CORE_TARA_ENGINE_H_
#define TARA_CORE_TARA_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rule_catalog.h"
#include "core/stable_region_index.h"
#include "core/tar_archive.h"
#include "core/trajectory.h"
#include "mining/frequent_itemset.h"
#include "txdb/evolving_database.h"

namespace tara {

/// A (minimum support, minimum confidence) query setting.
struct ParameterSetting {
  double min_support = 0.0;
  double min_confidence = 0.0;
};

/// How a multi-window predicate combines per-window validity.
enum class MatchMode {
  kSingle,  ///< valid in at least one of the windows (union)
  kExact,   ///< valid in every window (intersection)
};

/// The TARA framework: offline knowledge-base construction (Association
/// Generator + Knowledge Base Constructor of Figure 2) plus the online
/// explorer operations (Q1-Q5, roll-up/drill-down).
///
/// Offline, each arriving window is mined once with the floor thresholds;
/// the produced rules are interned in the RuleCatalog, their counts
/// archived in the TarArchive, and the window's EPS slice built as a
/// WindowIndex. Online queries touch only these structures — never the raw
/// data — with thresholds at or above the floors.
class TaraEngine {
 public:
  struct Options {
    /// Generation floors (Table 4): the per-window mining thresholds. All
    /// online queries must use minsupp/minconf >= these floors.
    double min_support_floor = 0.001;
    double min_confidence_floor = 0.1;
    /// Cap on frequent-itemset cardinality (0 = unlimited).
    uint32_t max_itemset_size = 0;
    /// Build per-window item→rule inverted indexes (the TARA-S variant)
    /// enabling Q5 content queries at extra build cost.
    bool build_content_index = false;
  };

  /// Per-window offline timing/size breakdown (Figure 9's stacked tasks).
  struct WindowBuildStats {
    WindowId window = 0;
    double itemset_seconds = 0;  ///< frequent itemset generation
    double rule_seconds = 0;     ///< rule derivation
    double archive_seconds = 0;  ///< TAR Archive append
    double index_seconds = 0;    ///< EPS (stable region) index build
    size_t itemset_count = 0;
    size_t rule_count = 0;
    size_t location_count = 0;
    size_t region_count = 0;

    double total_seconds() const {
      return itemset_seconds + rule_seconds + archive_seconds + index_seconds;
    }
  };

  /// Result of the Q1 trajectory query: the rules matching the anchor
  /// setting plus each rule's trajectory over the horizon windows.
  struct TrajectoryQueryResult {
    std::vector<RuleId> rules;
    std::vector<Trajectory> trajectories;
  };

  /// Result of the Q2 ruleset comparison.
  struct RulesetDiff {
    std::vector<RuleId> only_first;
    std::vector<RuleId> only_second;
  };

  /// Result of mining over a rolled-up window union: rules certainly valid
  /// (interval lower bounds pass) and rules whose validity depends on the
  /// sub-floor windows (only upper bounds pass).
  struct RolledUpRules {
    std::vector<RuleId> certain;
    std::vector<RuleId> possible;
  };

  explicit TaraEngine(const Options& options);

  /// Mines and indexes transactions [begin, end) of `db` as the next
  /// window. Returns the new window id. This is the incremental (iPARAS)
  /// build step: prior windows are never revisited.
  WindowId AppendWindow(const TransactionDatabase& db, size_t begin,
                        size_t end);

  /// A rule with counts produced outside the engine (an external miner, or
  /// the serialization loader).
  struct PrecomputedRule {
    Rule rule;
    uint64_t rule_count = 0;
    uint64_t antecedent_count = 0;
  };

  /// Installs a window whose rules were mined elsewhere. The caller
  /// guarantees the rules are exactly those passing this engine's floors
  /// over a window of `total_transactions` transactions. Used by the
  /// knowledge-base loader and by callers plugging in their own miner.
  WindowId AppendPrecomputedWindow(uint64_t total_transactions,
                                   const std::vector<PrecomputedRule>& rules);

  /// Convenience: appends every window of an evolving database.
  void BuildAll(const EvolvingDatabase& data);

  uint32_t window_count() const {
    return static_cast<uint32_t>(windows_.size());
  }

  /// --- Online operations -------------------------------------------------

  /// Rules valid in window `w` under `setting`.
  std::vector<RuleId> MineWindow(WindowId w,
                                 const ParameterSetting& setting) const;

  /// Rules valid across `windows` under `setting`, combined per `mode`.
  /// Output is sorted by RuleId.
  std::vector<RuleId> MineWindows(const std::vector<WindowId>& windows,
                                  const ParameterSetting& setting,
                                  MatchMode mode) const;

  /// Q1: rules matching `setting` in `anchor`, each with its trajectory
  /// over `horizon`.
  TrajectoryQueryResult TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const std::vector<WindowId>& horizon) const;

  /// Q2: symmetric difference of the rulesets of two settings over the same
  /// windows. Outputs sorted by RuleId.
  RulesetDiff CompareSettings(const ParameterSetting& first,
                              const ParameterSetting& second,
                              const std::vector<WindowId>& windows,
                              MatchMode mode) const;

  /// Q3: the time-aware stable region of `setting` in window `w` — the
  /// parameter recommendation primitive (any setting inside the region is
  /// equivalent; the region's upper corner is the tightest setting with the
  /// same result).
  RegionInfo RecommendRegion(WindowId w,
                             const ParameterSetting& setting) const;

  /// Q4: evolving-behavior measures of a rule over `windows`.
  TrajectoryMeasures RuleMeasures(RuleId rule,
                                  const std::vector<WindowId>& windows) const;

  /// Q5: rules valid under `setting` in window `w` containing all of
  /// `items`. Requires Options::build_content_index.
  std::vector<RuleId> ContentQuery(WindowId w, const Itemset& items,
                                   const ParameterSetting& setting) const;

  /// Builds the merged item→rules view of a window's result set — the
  /// region-index merge the TARA-S variant performs during Q1 (its extra
  /// online cost in Figures 7-8).
  std::unordered_map<ItemId, std::vector<RuleId>> ContentView(
      WindowId w, const ParameterSetting& setting) const;

  /// Roll-up: interval measures of `rule` over the union of `windows`.
  RollUpBound RollUpRule(RuleId rule,
                         const std::vector<WindowId>& windows) const;

  /// Roll-up mining: rules valid over the union of `windows` under
  /// `setting`, split into certain and possible per the interval bounds.
  RolledUpRules MineRolledUp(const std::vector<WindowId>& windows,
                             const ParameterSetting& setting) const;

  /// --- Accessors ----------------------------------------------------------

  const RuleCatalog& catalog() const { return catalog_; }
  const TarArchive& archive() const { return archive_; }
  const WindowIndex& window_index(WindowId w) const;
  /// The build inputs of a window (used by roll-up and serialization).
  const std::vector<WindowIndex::Entry>& window_entries(WindowId w) const;
  const std::vector<WindowBuildStats>& build_stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Approximate bytes of all EPS window indexes (Figure 12 bookkeeping).
  size_t IndexBytes() const;

 private:
  void CheckSetting(const ParameterSetting& setting) const;

  Options options_;
  RuleCatalog catalog_;
  TarArchive archive_;
  std::vector<WindowIndex> windows_;
  /// Per-window build inputs kept for roll-up candidate enumeration.
  std::vector<std::vector<WindowIndex::Entry>> window_entries_;
  std::vector<WindowBuildStats> stats_;
};

}  // namespace tara

#endif  // TARA_CORE_TARA_ENGINE_H_
