#include "core/kb_open.h"

#include <memory>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "core/kb_blocks.h"
#include "core/kb_storage.h"

namespace tara {

Expected<TaraEngine, LoadError> OpenKnowledgeBase(const OpenOptions& options) {
  if (KnowledgeBaseBlocksDirExists(options.kb_dir)) {
    auto mapped = MappedKb::Open(options.kb_dir);
    if (!mapped.has_value()) return mapped.error();
    const uint32_t parallelism =
        options.parallelism == 0 ? std::thread::hardware_concurrency()
                                 : options.parallelism;
    if (options.verify == OpenVerify::kHashes) {
      std::unique_ptr<ThreadPool> pool;
      if (parallelism > 1 && mapped->manifest().blocks.size() > 1) {
        pool = std::make_unique<ThreadPool>(parallelism);
      }
      if (auto error = mapped->VerifyHashes(pool.get())) return *error;
    }

    const KbBlocksManifest& manifest = mapped->manifest();
    KbOptions engine_options;
    engine_options.min_support_floor = manifest.min_support_floor;
    engine_options.min_confidence_floor = manifest.min_confidence_floor;
    engine_options.max_itemset_size =
        static_cast<uint32_t>(manifest.max_itemset_size);
    engine_options.build_content_index = manifest.build_content_index;
    engine_options.metrics = options.metrics;
    engine_options.parallelism = options.parallelism;
    engine_options.query_cache_bytes = options.query_cache_bytes;
    TaraEngine engine(engine_options);

    // WAL replay appends windows, which requires the full catalog — a
    // mapped open with recovery materializes everything up front.
    const bool eager =
        options.mode == OpenMode::kEager || !options.wal_dir.empty();
    if (auto error = engine.AttachMappedKb(
            std::make_shared<const MappedKb>(std::move(mapped.value())),
            eager)) {
      return *error;
    }
    if (!options.wal_dir.empty()) {
      auto replayed = engine.AttachWal(options.wal_dir);
      if (!replayed.has_value()) return replayed.error();
      if (options.replay_stats != nullptr) {
        *options.replay_stats = replayed.value();
      }
    }
    return engine;
  }

  // TARAKB2 (or no checkpoint at all, rebuilding from the WAL alone).
  // kMapped has no TARAKB2 implementation — the open falls back to eager;
  // convert with `db split` / RepartitionKnowledgeBase to get mapped
  // opens.
  Expected<TaraEngine, LoadError> result =
      options.wal_dir.empty()
          ? internal::LoadKnowledgeBaseDirImpl(options.kb_dir, options.metrics,
                                               options.parallelism)
          : internal::RecoverKnowledgeBaseImpl(
                options.kb_dir, options.wal_dir, options.metrics,
                options.replay_stats, options.parallelism);
  if (result.has_value() && options.query_cache_bytes > 0) {
    result.value().SetQueryCacheBytes(options.query_cache_bytes);
  }
  return result;
}

}  // namespace tara
