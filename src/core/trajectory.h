#ifndef TARA_CORE_TRAJECTORY_H_
#define TARA_CORE_TRAJECTORY_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "common/arena.h"
#include "core/tar_archive.h"
#include "txdb/evolving_database.h"

namespace tara {

/// One point of a rule's trajectory through the Evolving Parameter Space
/// (Definition 10): its measures in one window, or absence.
struct TrajectoryPoint {
  WindowId window = 0;
  bool present = false;  ///< rule was generated in this window
  double support = 0.0;
  double confidence = 0.0;
};

/// A rule's trajectory over a window sequence.
using Trajectory = std::vector<TrajectoryPoint>;

/// Summary measures of a trajectory — the evolving-behavior insights the
/// online explorer ranks rules by (Section 2.4.2: coverage, stability,
/// standard deviation).
struct TrajectoryMeasures {
  /// Fraction of windows in which the rule was present (coverage of [95]).
  double coverage = 0.0;
  /// 1 - normalized mean absolute change of support between consecutive
  /// present windows; 1 means perfectly stable ([67]'s stability notion).
  double stability = 0.0;
  /// Population standard deviation of support over present windows.
  double support_stddev = 0.0;
  /// Population standard deviation of confidence over present windows.
  double confidence_stddev = 0.0;
  double mean_support = 0.0;
  double mean_confidence = 0.0;
};

/// Assembles the trajectory of `rule` across `windows` (any order; points
/// come back in request order) into `arena` — the zero-allocation hot-path
/// shape. The span stays valid until the arena's next Reset(), which also
/// reclaims the decode scratch.
std::span<const TrajectoryPoint> BuildTrajectoryInto(
    const TarArchive& archive, RuleId rule, std::span<const WindowId> windows,
    DecodeArena& arena);

/// Allocating convenience shape; `scratch` reuses a caller arena for the
/// decode instead of a per-call one.
Trajectory BuildTrajectory(const TarArchive& archive, RuleId rule,
                           std::span<const WindowId> windows,
                           DecodeArena* scratch = nullptr);
inline Trajectory BuildTrajectory(const TarArchive& archive, RuleId rule,
                                  std::initializer_list<WindowId> windows) {
  return BuildTrajectory(
      archive, rule, std::span<const WindowId>(windows.begin(),
                                               windows.size()));
}

/// Computes summary measures. An empty or all-absent trajectory yields
/// zeros.
TrajectoryMeasures ComputeMeasures(std::span<const TrajectoryPoint> trajectory);

}  // namespace tara

#endif  // TARA_CORE_TRAJECTORY_H_
