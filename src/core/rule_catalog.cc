#include "core/rule_catalog.h"

#include <mutex>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace tara {

size_t RuleCatalog::RuleHash::operator()(const Rule& r) const {
  return HashCombine(HashSpan(r.antecedent), HashSpan(r.consequent));
}

RuleCatalog::RuleCatalog(RuleCatalog&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mutex_);
  ids_ = std::move(other.ids_);
  rules_ = std::move(other.rules_);
}

RuleCatalog& RuleCatalog::operator=(RuleCatalog&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    ids_ = std::move(other.ids_);
    rules_ = std::move(other.rules_);
  }
  return *this;
}

RuleId RuleCatalog::Intern(const Rule& rule) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto [it, inserted] =
      ids_.try_emplace(rule, static_cast<RuleId>(rules_.size()));
  if (inserted) rules_.push_back(rule);
  return it->second;
}

RuleId RuleCatalog::Find(const Rule& rule) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = ids_.find(rule);
  return it == ids_.end() ? kNotFound : it->second;
}

const Rule& RuleCatalog::rule(RuleId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  TARA_CHECK_LT(id, rules_.size()) << "unknown rule id";
  return rules_[id];
}

size_t RuleCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return rules_.size();
}

std::string RuleCatalog::FormatRule(RuleId id) const {
  const Rule& r = rule(id);
  std::ostringstream out;
  for (size_t i = 0; i < r.antecedent.size(); ++i) {
    if (i) out << ' ';
    out << r.antecedent[i];
  }
  out << " -> ";
  for (size_t i = 0; i < r.consequent.size(); ++i) {
    if (i) out << ' ';
    out << r.consequent[i];
  }
  return out.str();
}

}  // namespace tara
