#include "core/rule_catalog.h"

#include <sstream>

#include "common/hash.h"
#include "common/logging.h"

namespace tara {

size_t RuleCatalog::RuleHash::operator()(const Rule& r) const {
  return HashCombine(HashSpan(r.antecedent), HashSpan(r.consequent));
}

RuleId RuleCatalog::Intern(const Rule& rule) {
  auto [it, inserted] = ids_.try_emplace(rule, rules_.size());
  if (inserted) rules_.push_back(rule);
  return it->second;
}

RuleId RuleCatalog::Find(const Rule& rule) const {
  auto it = ids_.find(rule);
  return it == ids_.end() ? kNotFound : it->second;
}

const Rule& RuleCatalog::rule(RuleId id) const {
  TARA_CHECK_LT(id, rules_.size()) << "unknown rule id";
  return rules_[id];
}

std::string RuleCatalog::FormatRule(RuleId id) const {
  const Rule& r = rule(id);
  std::ostringstream out;
  for (size_t i = 0; i < r.antecedent.size(); ++i) {
    if (i) out << ' ';
    out << r.antecedent[i];
  }
  out << " -> ";
  for (size_t i = 0; i < r.consequent.size(); ++i) {
    if (i) out << ' ';
    out << r.consequent[i];
  }
  return out.str();
}

}  // namespace tara
