#ifndef TARA_CORE_QUERY_KIND_H_
#define TARA_CORE_QUERY_KIND_H_

#include <string_view>

namespace tara {

/// Label of an online operation, used for per-kind latency series
/// ("tara.query.<name>.latency_ns"), per-kind result typing, and the
/// query-cache key. The numeric values are part of the cache key and the
/// batch-script grammar — append new kinds, never renumber.
enum class QueryKind : int {
  kMineWindow = 0,  ///< single-window mining
  kMineWindows,     ///< multi-window mining (union/intersection)
  kTrajectory,      ///< Q1 trajectory query
  kCompare,         ///< Q2 ruleset comparison
  kRegion,          ///< Q3 stable-region recommendation
  kMeasures,        ///< Q4 evolving-behavior measures
  kContent,         ///< Q5 content query
  kContentView,     ///< TARA-S merged item→rules view
  kRollUpRule,      ///< roll-up of a single rule
  kRollUpMine,      ///< roll-up mining over a window union
};

inline constexpr int kQueryKindCount = 10;

/// The metric label of a query kind ("mine_window", "trajectory", ...).
constexpr std::string_view QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMineWindow:
      return "mine_window";
    case QueryKind::kMineWindows:
      return "mine_windows";
    case QueryKind::kTrajectory:
      return "trajectory";
    case QueryKind::kCompare:
      return "compare";
    case QueryKind::kRegion:
      return "region";
    case QueryKind::kMeasures:
      return "measures";
    case QueryKind::kContent:
      return "content";
    case QueryKind::kContentView:
      return "content_view";
    case QueryKind::kRollUpRule:
      return "rollup_rule";
    case QueryKind::kRollUpMine:
      return "rollup_mine";
  }
  return "unknown";
}

}  // namespace tara

#endif  // TARA_CORE_QUERY_KIND_H_
