#include "core/stable_region_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mining/frequent_itemset.h"

namespace tara {
namespace {

double ConfidenceOf(uint64_t rule_count, uint64_t antecedent_count) {
  return antecedent_count == 0
             ? 0.0
             : static_cast<double>(rule_count) /
                   static_cast<double>(antecedent_count);
}

/// Strict total order on entries: descending support count, then
/// descending confidence, then rule id. Total because rule ids are unique
/// within a window, so every sort — chunked or not — yields one sequence.
bool LocationLess(const WindowIndex::Entry& a, const WindowIndex::Entry& b) {
  if (a.rule_count != b.rule_count) return a.rule_count > b.rule_count;
  const double ca = ConfidenceOf(a.rule_count, a.antecedent_count);
  const double cb = ConfidenceOf(b.rule_count, b.antecedent_count);
  if (ca != cb) return ca > cb;
  return a.rule < b.rule;
}

/// Sorts `entries` into parametric-location order, chunk-sorting on the
/// pool and merging when one is supplied. Small inputs sort inline — the
/// fan-out overhead would dwarf the work.
void SortByLocation(std::vector<WindowIndex::Entry>* entries,
                    ThreadPool* pool) {
  constexpr size_t kParallelSortMin = 4096;
  const size_t n = entries->size();
  if (pool == nullptr || n < kParallelSortMin ||
      pool->ChunkCountFor(n) <= 1) {
    std::sort(entries->begin(), entries->end(), LocationLess);
    return;
  }
  const size_t chunks = pool->ChunkCountFor(n);
  std::vector<std::pair<size_t, size_t>> ranges(chunks);
  pool->ParallelFor(n, [&](size_t chunk, size_t begin, size_t end) {
    std::sort(entries->begin() + begin, entries->begin() + end, LocationLess);
    ranges[chunk] = {begin, end};
  });
  // Fold the sorted chunks left-to-right; the comparator's total order
  // makes the merged sequence identical to a single full sort.
  size_t merged_end = ranges[0].second;
  for (size_t c = 1; c < chunks; ++c) {
    std::inplace_merge(entries->begin(), entries->begin() + merged_end,
                       entries->begin() + ranges[c].second, LocationLess);
    merged_end = ranges[c].second;
  }
}

}  // namespace

void WindowIndex::Build(const std::vector<Entry>& entries,
                        uint64_t total_transactions, bool build_content_index,
                        const RuleCatalog& catalog, ThreadPool* pool) {
  total_transactions_ = total_transactions;
  has_content_index_ = build_content_index;
  buckets_.clear();
  confidence_grid_.clear();
  rule_locations_.clear();
  content_index_.clear();

  rule_locations_.reserve(entries.size() * 2);
  for (const Entry& e : entries) {
    TARA_CHECK(e.rule_count > 0 && e.antecedent_count >= e.rule_count);
    rule_locations_[e.rule] = e;
  }

  // Group by exact location (rule_count, antecedent_count determines the
  // confidence exactly; two rules share a location iff both counts match —
  // Lemma 2's distinctness guarantee).
  std::vector<Entry> sorted = entries;
  SortByLocation(&sorted, pool);

  for (const Entry& e : sorted) {
    const double conf = ConfidenceOf(e.rule_count, e.antecedent_count);
    if (buckets_.empty() || buckets_.back().rule_count != e.rule_count) {
      buckets_.push_back(Bucket{e.rule_count, {}});
    }
    Bucket& bucket = buckets_.back();
    if (bucket.locations.empty() ||
        bucket.locations.back().confidence != conf) {
      bucket.locations.push_back(Location{e.rule_count, conf, {}});
    }
    bucket.locations.back().rules.push_back(e.rule);
    confidence_grid_.push_back(conf);
  }
  std::sort(confidence_grid_.begin(), confidence_grid_.end());
  confidence_grid_.erase(
      std::unique(confidence_grid_.begin(), confidence_grid_.end()),
      confidence_grid_.end());

  if (build_content_index) {
    for (const Entry& e : entries) {
      const Rule& rule = catalog.rule(e.rule);
      for (ItemId item : rule.antecedent) {
        content_index_[item].push_back(e.rule);
      }
      for (ItemId item : rule.consequent) {
        content_index_[item].push_back(e.rule);
      }
    }
    for (auto& [item, rules] : content_index_) {
      std::sort(rules.begin(), rules.end());
    }
  }
}

void WindowIndex::CollectRules(double min_support, double min_confidence,
                               std::vector<RuleId>* out) const {
  const uint64_t min_count =
      MinCountForSupport(min_support, total_transactions_);
  for (const Bucket& bucket : buckets_) {
    if (bucket.rule_count < min_count) break;  // buckets descend
    for (const Location& loc : bucket.locations) {
      if (loc.confidence + 1e-12 < min_confidence) break;  // conf descends
      out->insert(out->end(), loc.rules.begin(), loc.rules.end());
    }
  }
}

size_t WindowIndex::CollectRulesInto(double min_support,
                                     double min_confidence,
                                     std::span<RuleId> out) const {
  const uint64_t min_count =
      MinCountForSupport(min_support, total_transactions_);
  size_t written = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.rule_count < min_count) break;  // buckets descend
    for (const Location& loc : bucket.locations) {
      if (loc.confidence + 1e-12 < min_confidence) break;  // conf descends
      for (RuleId rule : loc.rules) {
        if (written == out.size()) return written;
        out[written++] = rule;
      }
    }
  }
  return written;
}

size_t WindowIndex::CountRules(double min_support,
                               double min_confidence) const {
  const uint64_t min_count =
      MinCountForSupport(min_support, total_transactions_);
  size_t count = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.rule_count < min_count) break;
    for (const Location& loc : bucket.locations) {
      if (loc.confidence + 1e-12 < min_confidence) break;
      count += loc.rules.size();
    }
  }
  return count;
}

RegionInfo WindowIndex::Locate(double min_support,
                               double min_confidence) const {
  RegionInfo region;
  region.result_size = CountRules(min_support, min_confidence);

  // Support grid: unique support values descending (from buckets).
  region.support_lower = 0.0;
  region.support_upper = 1.0;
  for (const Bucket& bucket : buckets_) {
    const double support = total_transactions_ == 0
                               ? 0.0
                               : static_cast<double>(bucket.rule_count) /
                                     static_cast<double>(total_transactions_);
    if (support + 1e-12 >= min_support) {
      region.support_upper = support;  // smallest boundary >= query
    } else {
      region.support_lower = support;  // largest boundary < query
      break;
    }
  }

  // Confidence grid: ascending vector; region is (prev, next].
  const auto it = std::lower_bound(confidence_grid_.begin(),
                                   confidence_grid_.end(),
                                   min_confidence - 1e-12);
  region.confidence_upper =
      it == confidence_grid_.end() ? 1.0 : *it;
  region.confidence_lower =
      it == confidence_grid_.begin() ? 0.0 : *(it - 1);
  return region;
}

void WindowIndex::ContentQuery(const Itemset& items, double min_support,
                               double min_confidence,
                               std::vector<RuleId>* out) const {
  TARA_CHECK(has_content_index_)
      << "ContentQuery requires the TARA-S content index";
  if (items.empty()) {
    CollectRules(min_support, min_confidence, out);
    return;
  }
  // Intersect the per-item rule lists, smallest first.
  std::vector<const std::vector<RuleId>*> lists;
  for (ItemId item : items) {
    auto it = content_index_.find(item);
    if (it == content_index_.end()) return;  // some item never occurs
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<RuleId> current = *lists[0];
  std::vector<RuleId> next;
  for (size_t i = 1; i < lists.size() && !current.empty(); ++i) {
    next.clear();
    std::set_intersection(current.begin(), current.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    current.swap(next);
  }

  const uint64_t min_count =
      MinCountForSupport(min_support, total_transactions_);
  for (RuleId rule : current) {
    const auto it = rule_locations_.find(rule);
    TARA_DCHECK(it != rule_locations_.end());
    const Entry& e = it->second;
    if (e.rule_count >= min_count &&
        ConfidenceOf(e.rule_count, e.antecedent_count) + 1e-12 >=
            min_confidence) {
      out->push_back(rule);
    }
  }
}

const WindowIndex::Entry* WindowIndex::FindRule(RuleId rule) const {
  const auto it = rule_locations_.find(rule);
  return it == rule_locations_.end() ? nullptr : &it->second;
}

size_t WindowIndex::location_count() const {
  size_t n = 0;
  for (const Bucket& b : buckets_) n += b.locations.size();
  return n;
}

size_t WindowIndex::region_count() const {
  // Grid cells spanned by the support boundaries (+1 for the region above
  // the largest value) times confidence boundaries (+1 likewise).
  return (buckets_.size() + 1) * (confidence_grid_.size() + 1);
}

size_t WindowIndex::ApproximateBytes() const {
  size_t bytes = sizeof(*this);
  for (const Bucket& b : buckets_) {
    bytes += sizeof(Bucket);
    for (const Location& loc : b.locations) {
      bytes += sizeof(Location) + loc.rules.size() * sizeof(RuleId);
    }
  }
  bytes += confidence_grid_.size() * sizeof(double);
  bytes += rule_locations_.size() * (sizeof(RuleId) + sizeof(Entry) + 16);
  for (const auto& [item, rules] : content_index_) {
    bytes += sizeof(ItemId) + rules.size() * sizeof(RuleId) + 16;
  }
  return bytes;
}

}  // namespace tara
