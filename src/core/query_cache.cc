#include "core/query_cache.h"

#include <utility>

#include "common/hash.h"

namespace tara {

QueryCache::QueryCache(size_t max_bytes, obs::MetricsRegistry* registry)
    : max_bytes_(max_bytes), shard_budget_(max_bytes / kShardCount) {
  if (registry == nullptr) return;
  hits_counter_ = registry->GetCounter("tara.cache.hits");
  misses_counter_ = registry->GetCounter("tara.cache.misses");
  evictions_counter_ = registry->GetCounter("tara.cache.evictions");
  bytes_gauge_ = registry->GetGauge("tara.cache.bytes");
}

std::string QueryCache::MakeKey(uint64_t generation, QueryKind kind,
                                std::string_view request) {
  std::string key;
  key.reserve(9 + request.size());
  for (int i = 0; i < 8; ++i) {
    key.push_back(static_cast<char>((generation >> (8 * i)) & 0xff));
  }
  key.push_back(static_cast<char>(kind));
  key.append(request);
  return key;
}

QueryCache::Shard& QueryCache::ShardFor(std::string_view key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const char c : key) {
    h = HashCombine(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return shards_[h % kShardCount];
}

void QueryCache::UpdateBytesGauge() {
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(
        static_cast<double>(bytes_.load(std::memory_order_relaxed)));
  }
}

std::optional<std::string> QueryCache::Get(uint64_t generation, QueryKind kind,
                                           std::string_view request) {
  const std::string key = MakeKey(generation, kind, request);
  Shard& shard = ShardFor(key);
  std::optional<std::string> result;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      result = it->second->value;
    }
  }
  if (result.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_counter_ != nullptr) misses_counter_->Increment();
  }
  return result;
}

void QueryCache::Put(uint64_t generation, QueryKind kind,
                     std::string_view request, std::string result) {
  std::string key = MakeKey(generation, kind, request);
  const size_t cost = key.size() + result.size() + kEntryOverhead;
  // An entry that cannot fit within one shard's budget is never cached:
  // admitting it would flush the whole shard for one value.
  if (cost > shard_budget_) return;
  Shard& shard = ShardFor(key);
  uint64_t evicted = 0;
  int64_t byte_delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh in place (same key implies same deterministic value, but
      // replace anyway so the accounting never drifts).
      byte_delta -= static_cast<int64_t>(it->second->value.size());
      byte_delta += static_cast<int64_t>(result.size());
      shard.bytes = static_cast<size_t>(
          static_cast<int64_t>(shard.bytes) + byte_delta);
      it->second->value = std::move(result);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      while (shard.bytes + cost > shard_budget_ && !shard.lru.empty()) {
        const Entry& victim = shard.lru.back();
        const size_t victim_cost =
            victim.key.size() + victim.value.size() + kEntryOverhead;
        shard.index.erase(std::string_view(victim.key));
        shard.lru.pop_back();
        shard.bytes -= victim_cost;
        byte_delta -= static_cast<int64_t>(victim_cost);
        ++evicted;
      }
      shard.lru.push_front(Entry{std::move(key), std::move(result)});
      shard.index.emplace(std::string_view(shard.lru.front().key),
                          shard.lru.begin());
      shard.bytes += cost;
      byte_delta += static_cast<int64_t>(cost);
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (evictions_counter_ != nullptr) evictions_counter_->Increment(evicted);
  }
  if (byte_delta != 0) {
    if (byte_delta > 0) {
      bytes_.fetch_add(static_cast<uint64_t>(byte_delta),
                       std::memory_order_relaxed);
    } else {
      bytes_.fetch_sub(static_cast<uint64_t>(-byte_delta),
                       std::memory_order_relaxed);
    }
    UpdateBytesGauge();
  }
}

QueryCache::Stats QueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace tara
