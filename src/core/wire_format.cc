#include "core/wire_format.h"

#include <bit>
#include <sstream>

#include "common/varint.h"

namespace tara {
namespace {

void AppendVarint(uint64_t value, std::string* out) {
  std::vector<uint8_t> bytes;
  varint::EncodeU64(value, &bytes);
  out->append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

/// Little-endian IEEE-754 bits, the inverse of Reader::ReadDouble.
void AppendDouble(double value, std::string* out) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Cursor over untrusted payload bytes; every Read* returns false on
/// truncation or malformed varints (mirrors the Reader of
/// query_request.cc, which is private to that translation unit).
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  explicit Reader(std::string_view bytes)
      : data(reinterpret_cast<const uint8_t*>(bytes.data())),
        size(bytes.size()) {}

  bool ReadVarint(uint64_t* out) {
    return varint::TryDecodeU64(data, size, &pos, out);
  }

  bool ReadByte(uint8_t* out) {
    if (pos >= size) return false;
    *out = data[pos++];
    return true;
  }

  bool ReadDouble(double* out) {
    if (pos + 8 > size) return false;
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    }
    pos += 8;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  template <typename Int>
  bool ReadIdList(std::vector<Int>* out) {
    uint64_t count = 0;
    if (!ReadVarint(&count) || count > size) return false;
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!ReadVarint(&id)) return false;
      out->push_back(static_cast<Int>(id));
    }
    return true;
  }

  std::string_view Rest() const {
    return std::string_view(reinterpret_cast<const char*>(data) + pos,
                            size - pos);
  }

  bool AtEnd() const { return pos == size; }
};

ParseError Truncated(std::string_view what) {
  return ParseError{ParseError::Code::kTruncatedPayload,
                    "payload ended inside " + std::string(what)};
}

ParseError BadBody(std::string_view what) {
  return ParseError{ParseError::Code::kBadRequestBody, std::string(what)};
}

ParseError Trailing(size_t extra) {
  std::ostringstream message;
  message << extra << " unexpected bytes after a well-formed structure";
  return ParseError{ParseError::Code::kTrailingBytes, message.str()};
}

bool ReadSetting(Reader* in, ParameterSetting* out) {
  return in->ReadDouble(&out->min_support) &&
         in->ReadDouble(&out->min_confidence);
}

/// MatchMode arrives as one byte; only the two defined values are legal.
bool ReadMode(Reader* in, MatchMode* out) {
  uint8_t mode = 0;
  if (!in->ReadByte(&mode) || mode > 1) return false;
  *out = static_cast<MatchMode>(mode);
  return true;
}

}  // namespace

std::string_view ParseErrorCodeName(ParseError::Code code) {
  switch (code) {
    case ParseError::Code::kTruncatedHeader:
      return "truncated_header";
    case ParseError::Code::kBadMagic:
      return "bad_magic";
    case ParseError::Code::kUnsupportedVersion:
      return "unsupported_version";
    case ParseError::Code::kUnknownFrameType:
      return "unknown_frame_type";
    case ParseError::Code::kFrameTooLarge:
      return "frame_too_large";
    case ParseError::Code::kTruncatedPayload:
      return "truncated_payload";
    case ParseError::Code::kUnknownQueryKind:
      return "unknown_query_kind";
    case ParseError::Code::kBadRequestBody:
      return "bad_request_body";
    case ParseError::Code::kBadResultBody:
      return "bad_result_body";
    case ParseError::Code::kBadErrorBody:
      return "bad_error_body";
    case ParseError::Code::kTrailingBytes:
      return "trailing_bytes";
    case ParseError::Code::kUnexpectedFrame:
      return "unexpected_frame";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& out, const ParseError& error) {
  return out << "ParseError[" << ParseErrorCodeName(error.code)
             << "]: " << error.message;
}

std::string_view WireErrorCodeName(uint32_t code) {
  if (const auto query = QueryErrorFromWireCode(code)) {
    return QueryErrorCodeName(*query);
  }
  switch (static_cast<ServerWireError>(code)) {
    case ServerWireError::kOverloaded:
      return "overloaded";
    case ServerWireError::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServerWireError::kShuttingDown:
      return "shutting_down";
    case ServerWireError::kBadRequest:
      return "bad_request";
    case ServerWireError::kInternal:
      return "internal";
    case ServerWireError::kReadOnlyReplica:
      return "read_only_replica";
    default:
      break;
  }
  if (code >= 200 && code <= 211) {
    return ParseErrorCodeName(static_cast<ParseError::Code>(code));
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& out, const WireError& error) {
  return out << "WireError[" << error.code << " "
             << WireErrorCodeName(error.code) << "]: " << error.message;
}

void AppendFrameHeader(FrameType type, size_t payload_size,
                       std::string* out) {
  out->push_back(static_cast<char>(kWireMagic0));
  out->push_back(static_cast<char>(kWireMagic1));
  out->push_back(static_cast<char>(kWireProtocolVersion));
  out->push_back(static_cast<char>(type));
  const uint32_t size = static_cast<uint32_t>(payload_size);
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((size >> (8 * i)) & 0xff));
  }
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kWireHeaderBytes + payload.size());
  AppendFrameHeader(type, payload.size(), &out);
  out.append(payload);
  return out;
}

Expected<FrameHeader, ParseError> DecodeFrameHeader(std::string_view bytes,
                                                    uint32_t max_payload) {
  if (bytes.size() < kWireHeaderBytes) {
    std::ostringstream message;
    message << "frame header needs " << kWireHeaderBytes << " bytes, got "
            << bytes.size();
    return ParseError{ParseError::Code::kTruncatedHeader, message.str()};
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  if (data[0] != kWireMagic0 || data[1] != kWireMagic1) {
    return ParseError{ParseError::Code::kBadMagic,
                      "bytes do not start with the TARA wire magic 'TW'"};
  }
  if (data[2] != kWireProtocolVersion) {
    std::ostringstream message;
    message << "frame speaks protocol version "
            << static_cast<unsigned>(data[2]) << "; this build speaks "
            << static_cast<unsigned>(kWireProtocolVersion);
    return ParseError{ParseError::Code::kUnsupportedVersion, message.str()};
  }
  const uint8_t type = data[3];
  if (type < static_cast<uint8_t>(FrameType::kExecute) ||
      type > static_cast<uint8_t>(FrameType::kReplicaHeartbeat)) {
    std::ostringstream message;
    message << "unknown frame type " << static_cast<unsigned>(type);
    return ParseError{ParseError::Code::kUnknownFrameType, message.str()};
  }
  uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<uint32_t>(data[4 + i]) << (8 * i);
  }
  if (size > max_payload || size > kWireMaxPayloadBytes) {
    std::ostringstream message;
    message << "declared payload of " << size << " bytes exceeds the limit "
            << std::min(max_payload, kWireMaxPayloadBytes);
    return ParseError{ParseError::Code::kFrameTooLarge, message.str()};
  }
  FrameHeader header;
  header.version = data[2];
  header.type = static_cast<FrameType>(type);
  header.payload_size = size;
  return header;
}

Expected<DecodedFrame, ParseError> DecodeFrame(std::string_view bytes,
                                               uint32_t max_payload) {
  auto header = DecodeFrameHeader(bytes, max_payload);
  if (!header.has_value()) return header.error();
  const size_t total = kWireHeaderBytes + header->payload_size;
  if (bytes.size() < total) {
    std::ostringstream message;
    message << "header declares a " << header->payload_size
            << "-byte payload but only " << bytes.size() - kWireHeaderBytes
            << " bytes follow";
    return ParseError{ParseError::Code::kTruncatedPayload, message.str()};
  }
  if (bytes.size() > total) return Trailing(bytes.size() - total);
  DecodedFrame frame;
  frame.header = *header;
  frame.payload = bytes.substr(kWireHeaderBytes, header->payload_size);
  return frame;
}

Expected<QueryRequest, ParseError> DecodeQueryRequest(
    std::string_view bytes) {
  Reader in(bytes);
  uint8_t kind_byte = 0;
  if (!in.ReadByte(&kind_byte)) return Truncated("the kind byte");
  if (kind_byte >= kQueryKindCount) {
    std::ostringstream message;
    message << "kind byte " << static_cast<unsigned>(kind_byte)
            << " names no QueryKind (this build knows 0-"
            << kQueryKindCount - 1 << ")";
    return ParseError{ParseError::Code::kUnknownQueryKind, message.str()};
  }
  QueryRequest request;
  request.kind = static_cast<QueryKind>(kind_byte);
  uint64_t id = 0;
  switch (request.kind) {
    case QueryKind::kMineWindow:
    case QueryKind::kRegion:
    case QueryKind::kContentView:
      if (!in.ReadVarint(&id)) return Truncated("the window id");
      request.window = static_cast<WindowId>(id);
      if (!ReadSetting(&in, &request.setting)) {
        return Truncated("the parameter setting");
      }
      break;
    case QueryKind::kMineWindows:
      if (!ReadMode(&in, &request.mode)) {
        return BadBody("missing or out-of-range match-mode byte");
      }
      if (!ReadSetting(&in, &request.setting)) {
        return Truncated("the parameter setting");
      }
      if (!in.ReadIdList(&request.windows)) {
        return Truncated("the window id list");
      }
      break;
    case QueryKind::kTrajectory:
      if (!in.ReadVarint(&id)) return Truncated("the anchor window id");
      request.window = static_cast<WindowId>(id);
      if (!ReadSetting(&in, &request.setting)) {
        return Truncated("the parameter setting");
      }
      if (!in.ReadIdList(&request.windows)) {
        return Truncated("the horizon window list");
      }
      break;
    case QueryKind::kCompare:
      if (!ReadMode(&in, &request.mode)) {
        return BadBody("missing or out-of-range match-mode byte");
      }
      if (!ReadSetting(&in, &request.setting) ||
          !ReadSetting(&in, &request.second)) {
        return Truncated("a parameter setting");
      }
      if (!in.ReadIdList(&request.windows)) {
        return Truncated("the window id list");
      }
      break;
    case QueryKind::kMeasures:
    case QueryKind::kRollUpRule:
      if (!in.ReadVarint(&id)) return Truncated("the rule id");
      request.rule = static_cast<RuleId>(id);
      if (!in.ReadIdList(&request.windows)) {
        return Truncated("the window id list");
      }
      break;
    case QueryKind::kContent:
      if (!in.ReadVarint(&id)) return Truncated("the window id");
      request.window = static_cast<WindowId>(id);
      if (!ReadSetting(&in, &request.setting)) {
        return Truncated("the parameter setting");
      }
      if (!in.ReadIdList(&request.items)) return Truncated("the item list");
      break;
    case QueryKind::kRollUpMine:
      if (!ReadSetting(&in, &request.setting)) {
        return Truncated("the parameter setting");
      }
      if (!in.ReadIdList(&request.windows)) {
        return Truncated("the window id list");
      }
      break;
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  return request;
}

std::string EncodeExecuteFrame(const QueryRequest& request,
                               uint32_t deadline_ms) {
  std::string payload;
  AppendVarint(deadline_ms, &payload);
  payload += EncodeQueryRequest(request);
  return EncodeFrame(FrameType::kExecute, payload);
}

Expected<ExecuteCommand, ParseError> DecodeExecutePayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t deadline = 0;
  if (!in.ReadVarint(&deadline) || deadline > UINT32_MAX) {
    return Truncated("the deadline varint");
  }
  auto request = DecodeQueryRequest(in.Rest());
  if (!request.has_value()) return request.error();
  ExecuteCommand command;
  command.deadline_ms = static_cast<uint32_t>(deadline);
  command.request = *std::move(request);
  return command;
}

std::string EncodeResultFrame(QueryKind kind, const QueryResult& result) {
  std::string payload;
  payload.push_back(static_cast<char>(kind));
  payload += EncodeQueryResult(kind, result);
  return EncodeFrame(FrameType::kResult, payload);
}

Expected<std::pair<QueryKind, QueryResult>, ParseError> DecodeResultPayload(
    std::string_view payload) {
  if (payload.empty()) return Truncated("the result kind byte");
  const uint8_t kind_byte = static_cast<uint8_t>(payload[0]);
  if (kind_byte >= kQueryKindCount) {
    std::ostringstream message;
    message << "result kind byte " << static_cast<unsigned>(kind_byte)
            << " names no QueryKind";
    return ParseError{ParseError::Code::kUnknownQueryKind, message.str()};
  }
  const QueryKind kind = static_cast<QueryKind>(kind_byte);
  auto result = DecodeQueryResult(kind, payload.substr(1));
  if (!result.has_value()) {
    std::ostringstream message;
    message << "bytes do not decode as a " << QueryKindName(kind)
            << " result";
    return ParseError{ParseError::Code::kBadResultBody, message.str()};
  }
  return std::make_pair(kind, *std::move(result));
}

std::string EncodeErrorFrame(uint32_t code, std::string_view message) {
  std::string payload;
  AppendVarint(code, &payload);
  payload.append(message);
  return EncodeFrame(FrameType::kError, payload);
}

std::string EncodeErrorFrame(const QueryError& error) {
  return EncodeErrorFrame(QueryErrorWireCode(error.code), error.message);
}

std::string EncodeErrorFrame(ServerWireError code, std::string_view message) {
  return EncodeErrorFrame(static_cast<uint32_t>(code), message);
}

std::string EncodeErrorFrame(const ParseError& error) {
  return EncodeErrorFrame(static_cast<uint32_t>(error.code), error.message);
}

Expected<WireError, ParseError> DecodeErrorPayload(std::string_view payload) {
  Reader in(payload);
  uint64_t code = 0;
  if (!in.ReadVarint(&code) || code == 0 || code > UINT32_MAX) {
    return ParseError{ParseError::Code::kBadErrorBody,
                      "error payload lacks a valid nonzero code varint"};
  }
  WireError error;
  error.code = static_cast<uint32_t>(code);
  error.message = std::string(in.Rest());
  return error;
}

std::string EncodeBatchExecuteFrame(const std::vector<QueryRequest>& requests,
                                    uint32_t deadline_ms) {
  std::string payload;
  AppendVarint(deadline_ms, &payload);
  AppendVarint(requests.size(), &payload);
  for (const QueryRequest& request : requests) {
    const std::string bytes = EncodeQueryRequest(request);
    AppendVarint(bytes.size(), &payload);
    payload += bytes;
  }
  return EncodeFrame(FrameType::kBatchExecute, payload);
}

Expected<BatchExecuteCommand, ParseError> DecodeBatchExecutePayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t deadline = 0, count = 0;
  if (!in.ReadVarint(&deadline) || deadline > UINT32_MAX) {
    return Truncated("the deadline varint");
  }
  if (!in.ReadVarint(&count) || count > in.size) {
    return Truncated("the request count");
  }
  BatchExecuteCommand command;
  command.deadline_ms = static_cast<uint32_t>(deadline);
  command.requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t length = 0;
    if (!in.ReadVarint(&length) || length > in.size - in.pos) {
      return Truncated("a request length prefix");
    }
    auto request =
        DecodeQueryRequest(std::string_view(in.Rest().data(), length));
    if (!request.has_value()) return request.error();
    in.pos += length;
    command.requests.push_back(*std::move(request));
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  return command;
}

std::string EncodeBatchResultFrame(
    const std::vector<QueryKind>& kinds,
    const std::vector<Expected<QueryResult, QueryError>>& results) {
  std::string payload;
  AppendVarint(results.size(), &payload);
  for (size_t i = 0; i < results.size(); ++i) {
    std::string body;
    if (results[i].has_value()) {
      payload.push_back(0);
      body.push_back(static_cast<char>(kinds[i]));
      body += EncodeQueryResult(kinds[i], *results[i]);
    } else {
      payload.push_back(1);
      AppendVarint(QueryErrorWireCode(results[i].error().code), &body);
      body += results[i].error().message;
    }
    AppendVarint(body.size(), &payload);
    payload += body;
  }
  return EncodeFrame(FrameType::kBatchResult, payload);
}

Expected<std::vector<Expected<QueryResult, WireError>>, ParseError>
DecodeBatchResultPayload(std::string_view payload) {
  Reader in(payload);
  uint64_t count = 0;
  if (!in.ReadVarint(&count) || count > in.size) {
    return Truncated("the result count");
  }
  std::vector<Expected<QueryResult, WireError>> results;
  results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t status = 0;
    uint64_t length = 0;
    if (!in.ReadByte(&status) || status > 1) {
      return BadBody("missing or out-of-range batch item status byte");
    }
    if (!in.ReadVarint(&length) || length > in.size - in.pos) {
      return Truncated("a batch item length prefix");
    }
    const std::string_view body(in.Rest().data(), length);
    in.pos += length;
    if (status == 0) {
      auto result = DecodeResultPayload(body);
      if (!result.has_value()) return result.error();
      results.push_back(std::move(result->second));
    } else {
      auto error = DecodeErrorPayload(body);
      if (!error.has_value()) return error.error();
      results.push_back(*std::move(error));
    }
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  return results;
}

std::string EncodeAppendWindowFrame(const TransactionDatabase& db,
                                    size_t begin, size_t end) {
  std::string payload;
  AppendVarint(end - begin, &payload);
  for (size_t i = begin; i < end; ++i) {
    const Transaction& tx = db[i];
    AppendVarint(varint::ZigzagEncode(tx.time), &payload);
    AppendVarint(tx.items.size(), &payload);
    for (const ItemId item : tx.items) AppendVarint(item, &payload);
  }
  return EncodeFrame(FrameType::kAppendWindow, payload);
}

Expected<TransactionDatabase, ParseError> DecodeAppendWindowPayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t count = 0;
  if (!in.ReadVarint(&count) || count > in.size) {
    return Truncated("the transaction count");
  }
  TransactionDatabase db;
  Timestamp last_time = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t time_bits = 0;
    Itemset items;
    if (!in.ReadVarint(&time_bits)) return Truncated("a timestamp");
    if (!in.ReadIdList(&items)) return Truncated("a transaction item list");
    const Timestamp time = varint::ZigzagDecode(time_bits);
    if (i > 0 && time < last_time) {
      return BadBody("transaction timestamps decrease; the database "
                     "requires non-decreasing order");
    }
    last_time = time;
    db.Append(time, std::move(items));
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  return db;
}

std::string EncodeAppendAckFrame(WindowId window, uint64_t generation) {
  std::string payload;
  AppendVarint(window, &payload);
  AppendVarint(generation, &payload);
  return EncodeFrame(FrameType::kAppendAck, payload);
}

Expected<AppendAck, ParseError> DecodeAppendAckPayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t window = 0, generation = 0;
  if (!in.ReadVarint(&window) || !in.ReadVarint(&generation)) {
    return Truncated("the append acknowledgement");
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  AppendAck ack;
  ack.window = static_cast<WindowId>(window);
  ack.generation = generation;
  return ack;
}

std::string EncodeInfoResponseFrame(const ServerInfo& info) {
  std::string payload;
  AppendVarint(info.window_count, &payload);
  AppendVarint(info.generation, &payload);
  AppendVarint(info.rule_count, &payload);
  return EncodeFrame(FrameType::kInfoResponse, payload);
}

Expected<ServerInfo, ParseError> DecodeInfoResponsePayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t windows = 0, generation = 0, rules = 0;
  if (!in.ReadVarint(&windows) || !in.ReadVarint(&generation) ||
      !in.ReadVarint(&rules)) {
    return Truncated("the server info");
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  ServerInfo info;
  info.window_count = static_cast<uint32_t>(windows);
  info.generation = generation;
  info.rule_count = rules;
  return info;
}

std::string EncodeReplicaSubscribeFrame(uint32_t from_window) {
  std::string payload;
  AppendVarint(from_window, &payload);
  return EncodeFrame(FrameType::kReplicaSubscribe, payload);
}

Expected<ReplicaSubscribe, ParseError> DecodeReplicaSubscribePayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t from = 0;
  if (!in.ReadVarint(&from) || from > UINT32_MAX) {
    return Truncated("the subscription start window");
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  ReplicaSubscribe subscribe;
  subscribe.from_window = static_cast<uint32_t>(from);
  return subscribe;
}

std::string EncodeReplicaCheckpointFrame(const ReplicaCheckpoint& checkpoint) {
  std::string payload;
  AppendDouble(checkpoint.min_support_floor, &payload);
  AppendDouble(checkpoint.min_confidence_floor, &payload);
  AppendVarint(checkpoint.max_itemset_size, &payload);
  payload.push_back(checkpoint.build_content_index ? 1 : 0);
  AppendVarint(checkpoint.window_count, &payload);
  AppendVarint(checkpoint.generation, &payload);
  return EncodeFrame(FrameType::kReplicaCheckpoint, payload);
}

Expected<ReplicaCheckpoint, ParseError> DecodeReplicaCheckpointPayload(
    std::string_view payload) {
  Reader in(payload);
  ReplicaCheckpoint checkpoint;
  if (!in.ReadDouble(&checkpoint.min_support_floor) ||
      !in.ReadDouble(&checkpoint.min_confidence_floor)) {
    return Truncated("the option floors");
  }
  uint64_t itemset_cap = 0;
  uint8_t content = 0;
  if (!in.ReadVarint(&itemset_cap) || itemset_cap > UINT32_MAX) {
    return Truncated("the itemset cap");
  }
  if (!in.ReadByte(&content) || content > 1) {
    return BadBody("missing or out-of-range content-index byte");
  }
  uint64_t windows = 0;
  if (!in.ReadVarint(&windows) || windows > UINT32_MAX) {
    return Truncated("the durable window count");
  }
  if (!in.ReadVarint(&checkpoint.generation)) {
    return Truncated("the generation");
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  checkpoint.max_itemset_size = static_cast<uint32_t>(itemset_cap);
  checkpoint.build_content_index = content == 1;
  checkpoint.window_count = static_cast<uint32_t>(windows);
  return checkpoint;
}

std::string EncodeReplicaRecordFrame(WindowId window,
                                     uint64_t total_transactions,
                                     uint64_t generation,
                                     std::string_view segment) {
  std::string payload;
  AppendVarint(window, &payload);
  AppendVarint(total_transactions, &payload);
  AppendVarint(generation, &payload);
  payload.append(segment);
  return EncodeFrame(FrameType::kReplicaRecord, payload);
}

Expected<ReplicaRecord, ParseError> DecodeReplicaRecordPayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t window = 0;
  ReplicaRecord record;
  if (!in.ReadVarint(&window) || window > UINT32_MAX) {
    return Truncated("the record window id");
  }
  if (!in.ReadVarint(&record.total_transactions)) {
    return Truncated("the transaction total");
  }
  if (!in.ReadVarint(&record.generation)) {
    return Truncated("the generation");
  }
  if (in.AtEnd()) return Truncated("the segment blob");
  record.window = static_cast<WindowId>(window);
  record.segment = std::string(in.Rest());
  return record;
}

std::string EncodeReplicaHeartbeatFrame(uint32_t window_count,
                                        uint64_t generation) {
  std::string payload;
  AppendVarint(window_count, &payload);
  AppendVarint(generation, &payload);
  return EncodeFrame(FrameType::kReplicaHeartbeat, payload);
}

Expected<ReplicaHeartbeat, ParseError> DecodeReplicaHeartbeatPayload(
    std::string_view payload) {
  Reader in(payload);
  uint64_t windows = 0;
  ReplicaHeartbeat heartbeat;
  if (!in.ReadVarint(&windows) || windows > UINT32_MAX ||
      !in.ReadVarint(&heartbeat.generation)) {
    return Truncated("the heartbeat");
  }
  if (!in.AtEnd()) return Trailing(in.size - in.pos);
  heartbeat.window_count = static_cast<uint32_t>(windows);
  return heartbeat;
}

}  // namespace tara
