#include "core/periodicity.h"

#include <algorithm>

namespace tara {

PeriodicityResult DetectPeriodicity(std::span<const TrajectoryPoint> trajectory,
                                    uint32_t max_period) {
  PeriodicityResult best;
  const size_t n = trajectory.size();
  if (n < 4) return best;

  size_t present_total = 0;
  for (const TrajectoryPoint& p : trajectory) present_total += p.present;
  // Always-on or always-off rules carry no cycle.
  if (present_total == n || present_total == 0) return best;

  const uint32_t limit =
      std::min<uint32_t>(max_period, static_cast<uint32_t>(n / 2));
  for (uint32_t period = 2; period <= limit; ++period) {
    for (uint32_t phase = 0; phase < period; ++phase) {
      size_t on_slots = 0, on_hits = 0, off_slots = 0, off_hits = 0;
      for (size_t i = 0; i < n; ++i) {
        if (i % period == phase) {
          ++on_slots;
          on_hits += trajectory[i].present;
        } else {
          ++off_slots;
          off_hits += trajectory[i].present;
        }
      }
      if (on_hits < 2 || on_slots == 0) continue;
      const double on_rate = static_cast<double>(on_hits) / on_slots;
      const double off_absence =
          off_slots == 0 ? 0.0
                         : 1.0 - static_cast<double>(off_hits) / off_slots;
      const double strength = on_rate * off_absence;
      // Prefer stronger patterns; among ties, shorter periods (a period-2
      // pattern also matches period 4 with half the evidence).
      if (strength > best.strength + 1e-12) {
        best.period = period;
        best.phase = phase;
        best.strength = strength;
      }
    }
  }
  if (best.strength <= 0.0) best = PeriodicityResult{};
  return best;
}

}  // namespace tara
