#ifndef TARA_CORE_STABLE_REGION_INDEX_H_
#define TARA_CORE_STABLE_REGION_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/rule_catalog.h"
#include "txdb/types.h"

namespace tara {

/// The time-aware stable region enclosing a query setting (Definition 11),
/// reported by the Q3 parameter-recommendation operation. Any
/// (minsupp, minconf) inside (support_lower, support_upper] ×
/// (confidence_lower, confidence_upper] yields the same ruleset, whose size
/// is `result_size`. The region's upper corner is its cut location
/// (Definition 12).
struct RegionInfo {
  double support_lower = 0.0;
  double support_upper = 1.0;
  double confidence_lower = 0.0;
  double confidence_upper = 1.0;
  size_t result_size = 0;
};

/// One window's slice of the Evolving Parameter Space: every rule of the
/// window interned at its temporal parametric location (Definition 9,
/// realized as the exact count pair so equal locations compare exactly),
/// with locations organized for dominance collection.
///
/// A query (minsupp, minconf) walks the locations dominating the query
/// point — support-count buckets in descending order, each bucket's
/// locations sorted by descending confidence with early exit — so query
/// cost is proportional to the number of *locations* in the answer, never
/// to the data size. This is the index that makes the online phase
/// milliseconds instead of re-mining.
class WindowIndex {
 public:
  /// One rule observation used to build the index.
  struct Entry {
    RuleId rule = 0;
    uint64_t rule_count = 0;
    uint64_t antecedent_count = 0;
  };

  WindowIndex() = default;

  /// Builds the index for a window with `total_transactions` transactions.
  /// When `build_content_index` is set (the TARA-S variant), a per-item
  /// inverted index over the rules is kept for content-based exploration.
  /// A non-null `pool` parallelizes the stable-region sweep's dominant
  /// cost — sorting the entries into parametric-location order — via
  /// chunked sorts merged deterministically; the built index is identical
  /// to a sequential build.
  void Build(const std::vector<Entry>& entries, uint64_t total_transactions,
             bool build_content_index, const RuleCatalog& catalog,
             ThreadPool* pool = nullptr);

  uint64_t total_transactions() const { return total_transactions_; }

  /// Appends every rule valid under (min_support, min_confidence).
  void CollectRules(double min_support, double min_confidence,
                    std::vector<RuleId>* out) const;

  /// Allocation-free variant: writes into `out` (size it with CountRules
  /// or an arena span) and returns how many rules were written. Stops at
  /// capacity, so a correctly sized span gets exactly the CollectRules
  /// answer in the same order.
  size_t CollectRulesInto(double min_support, double min_confidence,
                          std::span<RuleId> out) const;

  /// Number of rules valid under the setting without materializing them.
  size_t CountRules(double min_support, double min_confidence) const;

  /// Q3: the stable region containing the setting.
  RegionInfo Locate(double min_support, double min_confidence) const;

  /// Q5: rules valid under the setting that contain all of `items` in
  /// antecedent ∪ consequent. Requires build_content_index.
  void ContentQuery(const Itemset& items, double min_support,
                    double min_confidence, std::vector<RuleId>* out) const;

  /// The (rule_count, antecedent_count) location of a rule in this window,
  /// or nullptr if the rule was not generated here.
  const Entry* FindRule(RuleId rule) const;

  /// Number of distinct temporal parametric locations.
  size_t location_count() const;

  /// Number of stable regions in this window's EPS slice (grid cells
  /// spanned by the unique support and confidence boundaries).
  size_t region_count() const;

  /// Approximate heap footprint of the index structures, for Figure 12.
  size_t ApproximateBytes() const;

 private:
  struct Location {
    uint64_t rule_count = 0;
    double confidence = 0.0;
    std::vector<RuleId> rules;
  };
  /// Locations with the same support count, confidence descending.
  struct Bucket {
    uint64_t rule_count = 0;
    std::vector<Location> locations;
  };

  uint64_t total_transactions_ = 0;
  /// Buckets in descending rule_count order.
  std::vector<Bucket> buckets_;
  /// Unique confidence values ascending (region grid boundaries).
  std::vector<double> confidence_grid_;
  /// rule -> its location, for diffs and trajectory assembly.
  std::unordered_map<RuleId, Entry> rule_locations_;
  /// item -> rules containing it (TARA-S only), each list sorted.
  std::unordered_map<ItemId, std::vector<RuleId>> content_index_;
  bool has_content_index_ = false;
};

}  // namespace tara

#endif  // TARA_CORE_STABLE_REGION_INDEX_H_
