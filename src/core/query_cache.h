#ifndef TARA_CORE_QUERY_CACHE_H_
#define TARA_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/query_kind.h"
#include "obs/metrics.h"

namespace tara {

/// A sharded, memory-bounded LRU cache of serialized query results,
/// keyed by (generation, QueryKind, canonical request bytes).
///
/// ## Why generation-pinned keying needs no invalidation
///
/// Every online query answers from one immutable KnowledgeBaseSnapshot,
/// and every append publishes a NEW generation — existing generations are
/// never mutated (the RCU design of DESIGN.md, "Threading model"). A
/// result cached under generation G is therefore correct for as long as
/// the process lives: a query against a newer generation G+1 simply has a
/// different key and misses. Stale generations age out through the LRU
/// policy as traffic moves to new keys; there is no explicit invalidation
/// path, and none is needed. This mirrors the PARAS/iPARAS reuse argument
/// the offline phase is built on: precomputed answers stay valid because
/// the structure they were computed from is never edited in place.
///
/// ## Memory bound and sharding
///
/// The budget is split evenly across a fixed number of shards, each an
/// independent (mutex, hash map, LRU list). A Put that would exceed its
/// shard's budget evicts least-recently-used entries first; an entry
/// larger than a whole shard's budget is not cached at all. Charged cost
/// is key + value bytes plus a fixed per-entry overhead estimate, so the
/// configured bound approximates real heap use rather than entry count.
///
/// Thread-safety: Get/Put are safe from any number of threads; the shard
/// mutexes are uncontended unless two concurrent queries hash to the same
/// shard. Stats counters are relaxed atomics, mirrored into the
/// `tara.cache.{hits,misses,evictions}` counters and `tara.cache.bytes`
/// gauge when a MetricsRegistry is attached.
class QueryCache {
 public:
  /// Point-in-time counters (hit_rate() is a convenience on top).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;

    double hit_rate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  /// `max_bytes` bounds the total charged size across all shards.
  /// `registry` may be null (stats stay available through stats()).
  explicit QueryCache(size_t max_bytes,
                      obs::MetricsRegistry* registry = nullptr);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the serialized result cached for this exact (generation,
  /// kind, request) key, refreshing its recency; nullopt on a miss.
  std::optional<std::string> Get(uint64_t generation, QueryKind kind,
                                 std::string_view request);

  /// Inserts (or refreshes) the serialized result for a key, evicting
  /// LRU entries of the same shard as needed to stay within budget.
  void Put(uint64_t generation, QueryKind kind, std::string_view request,
           std::string result);

  size_t max_bytes() const { return max_bytes_; }

  Stats stats() const;

 private:
  static constexpr size_t kShardCount = 16;
  /// Charged per entry on top of key+value bytes: rough cost of the list
  /// node, map slot, and string headers.
  static constexpr size_t kEntryOverhead = 96;

  struct Entry {
    std::string key;
    std::string value;
  };

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  /// One flat key: generation + kind + canonical request bytes.
  static std::string MakeKey(uint64_t generation, QueryKind kind,
                             std::string_view request);
  Shard& ShardFor(std::string_view key);
  void UpdateBytesGauge();

  const size_t max_bytes_;
  const size_t shard_budget_;
  Shard shards_[kShardCount];

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_{0};

  /// Registry instruments, all null without a registry (the null sink).
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace tara

#endif  // TARA_CORE_QUERY_CACHE_H_
