#ifndef TARA_CORE_WINDOW_SET_H_
#define TARA_CORE_WINDOW_SET_H_

#include <cstdint>
#include <vector>

#include "txdb/evolving_database.h"

namespace tara {

/// A validated, canonical set of window ids — the multi-window argument of
/// the online operations (Q1 horizons, Q2 window scopes, roll-up unions).
///
/// Construction validates once — every id must be in range for the engine
/// the set will be used with — and canonicalizes (sorted ascending,
/// duplicates removed), so query methods never re-validate or re-sort per
/// call. The ids are always in ascending (chronological) order; trajectory
/// points therefore come out oldest-first.
///
/// Prefer building one through TaraEngine::MakeWindowSet / AllWindows,
/// which supply the engine's window count as the bound.
class WindowSet {
 public:
  /// The empty set.
  WindowSet() = default;

  /// Canonicalizes `ids` (sort + dedup) and validates every id against
  /// `window_count`. Aborts with an actionable message on an out-of-range
  /// id — constructing a WindowSet for windows that do not exist is a
  /// caller bug, not a recoverable condition.
  WindowSet(std::vector<WindowId> ids, uint32_t window_count);

  /// All windows [0, window_count).
  static WindowSet All(uint32_t window_count);

  /// The half-open range [begin, end) of windows; end <= window_count.
  static WindowSet Range(WindowId begin, WindowId end, uint32_t window_count);

  /// The single window `w`.
  static WindowSet Single(WindowId w, uint32_t window_count);

  const std::vector<WindowId>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  std::vector<WindowId>::const_iterator begin() const { return ids_.begin(); }
  std::vector<WindowId>::const_iterator end() const { return ids_.end(); }

  /// Membership test (binary search).
  bool contains(WindowId w) const;

  /// One past the largest id, 0 when empty — the minimum window count an
  /// engine must have for this set to be applicable.
  uint32_t required_window_count() const {
    return ids_.empty() ? 0 : ids_.back() + 1;
  }

  bool operator==(const WindowSet& other) const { return ids_ == other.ids_; }

 private:
  std::vector<WindowId> ids_;  ///< sorted ascending, unique
};

}  // namespace tara

#endif  // TARA_CORE_WINDOW_SET_H_
