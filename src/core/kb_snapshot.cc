#include "core/kb_snapshot.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace tara {

std::optional<std::string> KbOptions::Validate() const {
  std::ostringstream error;
  if (!(min_support_floor > 0.0 && min_support_floor <= 1.0)) {
    error << "Options::min_support_floor must be in (0, 1] — windows are "
             "mined once at this floor and online queries may only tighten "
             "it — got "
          << min_support_floor;
    return error.str();
  }
  if (!(min_confidence_floor >= 0.0 && min_confidence_floor <= 1.0)) {
    error << "Options::min_confidence_floor must be in [0, 1] — got "
          << min_confidence_floor;
    return error.str();
  }
  if (max_itemset_size == 1) {
    error << "Options::max_itemset_size of 1 admits no rules (a rule needs "
             ">= 2 items); use 0 for unlimited or a cap >= 2";
    return error.str();
  }
  return std::nullopt;
}

const WindowSegment& KnowledgeBaseSnapshot::segment(WindowId w) const {
  TARA_CHECK_LT(w, segments_.size()) << "bad window id";
  return *segments_[w];
}

size_t KnowledgeBaseSnapshot::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& segment : segments_) {
    bytes += segment->index.ApproximateBytes();
  }
  return bytes;
}

std::optional<QueryError> KnowledgeBaseSnapshot::ValidateSetting(
    const ParameterSetting& setting) const {
  if (setting.min_support + 1e-12 < options_.min_support_floor) {
    std::ostringstream message;
    message << "min_support " << setting.min_support
            << " is below the generation floor "
            << options_.min_support_floor
            << " — rules under the floor were never mined";
    return QueryError{QueryError::Code::kSupportBelowFloor, message.str()};
  }
  if (setting.min_confidence + 1e-12 < options_.min_confidence_floor) {
    std::ostringstream message;
    message << "min_confidence " << setting.min_confidence
            << " is below the generation floor "
            << options_.min_confidence_floor
            << " — rules under the floor were never derived";
    return QueryError{QueryError::Code::kConfidenceBelowFloor, message.str()};
  }
  return std::nullopt;
}

std::optional<QueryError> KnowledgeBaseSnapshot::ValidateWindow(
    WindowId w) const {
  if (w < segments_.size()) return std::nullopt;
  std::ostringstream message;
  message << "window " << w << " does not exist (snapshot generation "
          << generation_ << " has " << segments_.size() << " windows)";
  return QueryError{QueryError::Code::kBadWindow, message.str()};
}

std::optional<QueryError> KnowledgeBaseSnapshot::ValidateWindows(
    const WindowSet& windows) const {
  if (windows.empty()) {
    return QueryError{QueryError::Code::kEmptyWindowSet,
                      "the window set is empty — the operation needs at "
                      "least one window"};
  }
  if (windows.required_window_count() > segments_.size()) {
    std::ostringstream message;
    message << "WindowSet refers to window "
            << windows.required_window_count() - 1
            << " but this snapshot has only " << segments_.size()
            << " windows (set built for a newer generation or a different "
               "engine?)";
    return QueryError{QueryError::Code::kWindowSetMismatch, message.str()};
  }
  return std::nullopt;
}

std::optional<QueryError> KnowledgeBaseSnapshot::ValidateRule(
    RuleId rule) const {
  if (rule < rule_count_) return std::nullopt;
  std::ostringstream message;
  message << "rule " << rule << " is not part of this snapshot (generation "
          << generation_ << " has " << rule_count_ << " rules)";
  return QueryError{QueryError::Code::kUnknownRule, message.str()};
}

std::vector<RuleId> KnowledgeBaseSnapshot::CollectWindow(
    WindowId w, const ParameterSetting& setting) const {
  std::vector<RuleId> out;
  segments_[w]->index.CollectRules(setting.min_support,
                                   setting.min_confidence, &out);
  return out;
}

Expected<std::vector<RuleId>, QueryError> KnowledgeBaseSnapshot::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  if (auto error = ValidateWindow(w)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  return CollectWindow(w, setting);
}

std::vector<RuleId> KnowledgeBaseSnapshot::MineWindowsUnchecked(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  std::vector<RuleId> combined;
  bool first = true;
  for (WindowId w : windows) {
    std::vector<RuleId> rules = CollectWindow(w, setting);
    std::sort(rules.begin(), rules.end());
    if (first) {
      combined = std::move(rules);
      first = false;
      continue;
    }
    std::vector<RuleId> merged;
    if (mode == MatchMode::kSingle) {
      std::set_union(combined.begin(), combined.end(), rules.begin(),
                     rules.end(), std::back_inserter(merged));
    } else {
      std::set_intersection(combined.begin(), combined.end(), rules.begin(),
                            rules.end(), std::back_inserter(merged));
    }
    combined = std::move(merged);
  }
  return combined;
}

Expected<std::vector<RuleId>, QueryError> KnowledgeBaseSnapshot::MineWindows(
    const WindowSet& windows, const ParameterSetting& setting,
    MatchMode mode) const {
  if (auto error = ValidateWindows(windows)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  return MineWindowsUnchecked(windows, setting, mode);
}

Expected<TrajectoryQueryResult, QueryError>
KnowledgeBaseSnapshot::TrajectoryQuery(WindowId anchor,
                                       const ParameterSetting& setting,
                                       const WindowSet& horizon) const {
  if (auto error = ValidateWindow(anchor)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  if (auto error = ValidateWindows(horizon)) return *std::move(error);
  TrajectoryQueryResult result;
  result.rules = CollectWindow(anchor, setting);
  result.trajectories.reserve(result.rules.size());
  // One arena across the per-rule decodes; each iteration's scratch dies
  // at the Reset (the returned trajectories own their points).
  DecodeArena arena;
  for (RuleId rule : result.rules) {
    arena.Reset();
    result.trajectories.push_back(
        BuildTrajectory(*archive_, rule, horizon.ids(), &arena));
  }
  return result;
}

Expected<RulesetDiff, QueryError> KnowledgeBaseSnapshot::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const WindowSet& windows, MatchMode mode) const {
  if (auto error = ValidateWindows(windows)) return *std::move(error);
  if (auto error = ValidateSetting(first)) return *std::move(error);
  if (auto error = ValidateSetting(second)) return *std::move(error);
  const std::vector<RuleId> a = MineWindowsUnchecked(windows, first, mode);
  const std::vector<RuleId> b = MineWindowsUnchecked(windows, second, mode);
  RulesetDiff diff;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(diff.only_first));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(diff.only_second));
  return diff;
}

Expected<RegionInfo, QueryError> KnowledgeBaseSnapshot::RecommendRegion(
    WindowId w, const ParameterSetting& setting) const {
  if (auto error = ValidateWindow(w)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  return segments_[w]->index.Locate(setting.min_support,
                                    setting.min_confidence);
}

Expected<TrajectoryMeasures, QueryError> KnowledgeBaseSnapshot::RuleMeasures(
    RuleId rule, const WindowSet& windows) const {
  if (auto error = ValidateRule(rule)) return *std::move(error);
  if (auto error = ValidateWindows(windows)) return *std::move(error);
  DecodeArena arena;
  return ComputeMeasures(
      BuildTrajectoryInto(*archive_, rule, windows.ids(), arena));
}

Expected<std::vector<RuleId>, QueryError> KnowledgeBaseSnapshot::ContentQuery(
    WindowId w, const Itemset& items, const ParameterSetting& setting) const {
  if (!options_.build_content_index) {
    return QueryError{QueryError::Code::kNoContentIndex,
                      "content queries need an engine built with "
                      "Options::build_content_index (the TARA-S variant)"};
  }
  if (auto error = ValidateWindow(w)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  std::vector<RuleId> out;
  segments_[w]->index.ContentQuery(items, setting.min_support,
                                   setting.min_confidence, &out);
  return out;
}

Expected<std::unordered_map<ItemId, std::vector<RuleId>>, QueryError>
KnowledgeBaseSnapshot::ContentView(WindowId w,
                                   const ParameterSetting& setting) const {
  if (auto error = ValidateWindow(w)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  std::unordered_map<ItemId, std::vector<RuleId>> view;
  for (RuleId rule : CollectWindow(w, setting)) {
    const Rule& r = catalog_->rule(rule);
    for (ItemId item : r.antecedent) view[item].push_back(rule);
    for (ItemId item : r.consequent) view[item].push_back(rule);
  }
  for (auto& [item, rules] : view) std::sort(rules.begin(), rules.end());
  return view;
}

Expected<RollUpBound, QueryError> KnowledgeBaseSnapshot::RollUpRule(
    RuleId rule, const WindowSet& windows) const {
  if (auto error = ValidateRule(rule)) return *std::move(error);
  if (auto error = ValidateWindows(windows)) return *std::move(error);
  // O(runs · log entries) against the hierarchical index; the linear
  // archive scan stays available as the differential reference.
  return rollup_tree_->RollUp(rule, windows.ids());
}

Expected<RolledUpRules, QueryError> KnowledgeBaseSnapshot::MineRolledUp(
    const WindowSet& windows, const ParameterSetting& setting) const {
  if (auto error = ValidateWindows(windows)) return *std::move(error);
  if (auto error = ValidateSetting(setting)) return *std::move(error);
  // Candidates: every rule present in at least one of the windows.
  std::vector<RuleId> candidates;
  for (WindowId w : windows) {
    for (const WindowIndex::Entry& e : segments_[w]->entries) {
      candidates.push_back(e.rule);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  RolledUpRules result;
  for (RuleId rule : candidates) {
    const RollUpBound bound = rollup_tree_->RollUp(rule, windows.ids());
    const bool certain = bound.support_lo + 1e-12 >= setting.min_support &&
                         bound.confidence_lo + 1e-12 >= setting.min_confidence;
    const bool possible = bound.support_hi + 1e-12 >= setting.min_support &&
                          bound.confidence_hi + 1e-12 >= setting.min_confidence;
    if (certain) {
      result.certain.push_back(rule);
    } else if (possible) {
      result.possible.push_back(rule);
    }
  }
  return result;
}

}  // namespace tara
