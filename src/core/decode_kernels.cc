#include "core/decode_kernels.h"

#include <vector>

#include "common/varint.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TARA_X86 1
#endif

namespace tara::decode {
namespace {

/// Abort-free varint decode that classifies the failure. Acceptance set is
/// identical to varint::TryDecodeU64; the split into kTruncated/kOverlong
/// is what all kernels must agree on.
inline Status TryDecodeVar(const uint8_t* data, size_t size, size_t* pos,
                           uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= size) return Status::kTruncated;
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return Status::kOverlong;
  }
  *out = result;
  return Status::kOk;
}

/// Phase B shared by the two-phase kernels: turns the flat varint value
/// array into entries with exactly the legacy Decode() arithmetic —
/// uint32 wrap on window gaps, int64 wrap on zigzag count deltas.
DecodeResult ReconstructEntries(const uint64_t* values, size_t value_count,
                                Status tail_status, ArchiveEntry* out,
                                size_t out_capacity) {
  const size_t triples = value_count / 3;
  if (triples > out_capacity) return {Status::kCapacityExceeded, 0};
  ArchiveEntry entry;
  for (size_t t = 0; t < triples; ++t) {
    const uint64_t* v = values + t * 3;
    if (t == 0) {
      entry.window = static_cast<WindowId>(v[0]);
      entry.rule_count = v[1];
      entry.antecedent_count = v[2];
    } else {
      entry.window += static_cast<WindowId>(v[0]);
      entry.rule_count =
          static_cast<uint64_t>(static_cast<int64_t>(entry.rule_count) +
                                varint::ZigzagDecode(v[1]));
      entry.antecedent_count = static_cast<uint64_t>(
          static_cast<int64_t>(entry.antecedent_count) +
          varint::ZigzagDecode(v[2]));
    }
    out[t] = entry;
  }
  if (tail_status != Status::kOk) return {tail_status, triples};
  if (value_count % 3 != 0) return {Status::kDanglingValues, triples};
  return {Status::kOk, triples};
}

// ---------------------------------------------------------------------------
// Scalar reference: single pass, no scratch.
// ---------------------------------------------------------------------------

DecodeResult ScalarDecode(const uint8_t* data, size_t size, ArchiveEntry* out,
                          size_t out_capacity, uint64_t* /*scratch*/,
                          size_t /*scratch_capacity*/) {
  size_t pos = 0;
  size_t n = 0;
  ArchiveEntry entry;
  while (pos < size) {
    uint64_t v[3];
    for (int i = 0; i < 3; ++i) {
      // A clean end between varints mid-triple means the value count is
      // off, not that a varint was cut short.
      if (i > 0 && pos >= size) return {Status::kDanglingValues, n};
      const Status st = TryDecodeVar(data, size, &pos, &v[i]);
      if (st != Status::kOk) return {st, n};
    }
    if (n == out_capacity) return {Status::kCapacityExceeded, n};
    if (n == 0) {
      entry.window = static_cast<WindowId>(v[0]);
      entry.rule_count = v[1];
      entry.antecedent_count = v[2];
    } else {
      entry.window += static_cast<WindowId>(v[0]);
      entry.rule_count =
          static_cast<uint64_t>(static_cast<int64_t>(entry.rule_count) +
                                varint::ZigzagDecode(v[1]));
      entry.antecedent_count = static_cast<uint64_t>(
          static_cast<int64_t>(entry.antecedent_count) +
          varint::ZigzagDecode(v[2]));
    }
    out[n++] = entry;
  }
  return {Status::kOk, n};
}

// ---------------------------------------------------------------------------
// Two-phase SIMD kernels. Phase A splits the byte stream into u64 varint
// values, using a movemask over continuation bits to fast-path chunks that
// are all single-byte varints (the dominant case: stable rules delta-encode
// to 1-byte gaps and deltas). Phase B is the shared reconstruction above.
// ---------------------------------------------------------------------------

#ifdef TARA_X86

__attribute__((target("sse4.1"))) DecodeResult Sse4Decode(
    const uint8_t* data, size_t size, ArchiveEntry* out, size_t out_capacity,
    uint64_t* scratch, size_t scratch_capacity) {
  if (scratch_capacity < MaxValuesForStream(size)) {
    return {Status::kCapacityExceeded, 0};
  }
  size_t pos = 0;
  size_t vc = 0;
  Status tail = Status::kOk;
  while (pos + 16 <= size) {
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const int cont_mask = _mm_movemask_epi8(chunk);
    if (cont_mask == 0) {
      // Sixteen complete one-byte varints; widen directly.
      for (int i = 0; i < 16; ++i) {
        scratch[vc + i] = data[pos + i];
      }
      vc += 16;
      pos += 16;
      continue;
    }
    // Mixed widths: decode varints one by one until we clear this chunk,
    // so the next iteration re-enters at a varint boundary.
    const size_t chunk_end = pos + 16;
    while (pos < chunk_end) {
      const Status st = TryDecodeVar(data, size, &pos, &scratch[vc]);
      if (st != Status::kOk) {
        return ReconstructEntries(scratch, vc, st, out, out_capacity);
      }
      ++vc;
    }
  }
  while (pos < size) {
    const Status st = TryDecodeVar(data, size, &pos, &scratch[vc]);
    if (st != Status::kOk) {
      tail = st;
      break;
    }
    ++vc;
  }
  return ReconstructEntries(scratch, vc, tail, out, out_capacity);
}

__attribute__((target("avx2"))) DecodeResult Avx2Decode(
    const uint8_t* data, size_t size, ArchiveEntry* out, size_t out_capacity,
    uint64_t* scratch, size_t scratch_capacity) {
  if (scratch_capacity < MaxValuesForStream(size)) {
    return {Status::kCapacityExceeded, 0};
  }
  size_t pos = 0;
  size_t vc = 0;
  Status tail = Status::kOk;
  while (pos + 32 <= size) {
    const __m256i chunk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + pos));
    const int cont_mask = _mm256_movemask_epi8(chunk);
    if (cont_mask == 0) {
      for (int i = 0; i < 32; ++i) {
        scratch[vc + i] = data[pos + i];
      }
      vc += 32;
      pos += 32;
      continue;
    }
    const size_t chunk_end = pos + 32;
    while (pos < chunk_end) {
      const Status st = TryDecodeVar(data, size, &pos, &scratch[vc]);
      if (st != Status::kOk) {
        return ReconstructEntries(scratch, vc, st, out, out_capacity);
      }
      ++vc;
    }
  }
  while (pos < size) {
    const Status st = TryDecodeVar(data, size, &pos, &scratch[vc]);
    if (st != Status::kOk) {
      tail = st;
      break;
    }
    ++vc;
  }
  return ReconstructEntries(scratch, vc, tail, out, out_capacity);
}

#endif  // TARA_X86

constexpr DecodeKernel kScalarKernel = {"scalar", /*needs_scratch=*/false,
                                        ScalarDecode};
#ifdef TARA_X86
constexpr DecodeKernel kSse4Kernel = {"sse4", /*needs_scratch=*/true,
                                      Sse4Decode};
constexpr DecodeKernel kAvx2Kernel = {"avx2", /*needs_scratch=*/true,
                                      Avx2Decode};
#endif

std::vector<DecodeKernel> BuildSupportedKernels() {
  std::vector<DecodeKernel> kernels;
  kernels.push_back(kScalarKernel);
#ifdef TARA_X86
  const CpuFeatures& features = GetCpuFeatures();
  if (features.sse41) kernels.push_back(kSse4Kernel);
  if (features.avx2) kernels.push_back(kAvx2Kernel);
#endif
  return kernels;
}

}  // namespace

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kTruncated:
      return "truncated";
    case Status::kOverlong:
      return "overlong";
    case Status::kDanglingValues:
      return "dangling-values";
    case Status::kCapacityExceeded:
      return "capacity-exceeded";
  }
  return "unknown";
}

const DecodeKernel& ScalarDecodeKernel() { return kScalarKernel; }

std::span<const DecodeKernel> SupportedDecodeKernels() {
  static const std::vector<DecodeKernel> kernels = BuildSupportedKernels();
  return kernels;
}

const DecodeKernel& DispatchDecodeKernel(const CpuFeatures& features,
                                         bool force_scalar) {
  if (force_scalar) return kScalarKernel;
#ifdef TARA_X86
  if (features.avx2) return kAvx2Kernel;
  if (features.sse41) return kSse4Kernel;
#else
  (void)features;
#endif
  return kScalarKernel;
}

const DecodeKernel& ActiveDecodeKernel() {
  static const DecodeKernel& kernel =
      DispatchDecodeKernel(GetCpuFeatures(), ScalarDecodeForced());
  return kernel;
}

CheckedDecode DecodeStreamCheckedWith(const DecodeKernel& kernel,
                                      std::span<const uint8_t> bytes,
                                      DecodeArena& arena) {
  const size_t max_entries = MaxEntriesForStream(bytes.size());
  std::span<ArchiveEntry> out = arena.AllocSpan<ArchiveEntry>(max_entries);
  std::span<uint64_t> scratch;
  if (kernel.needs_scratch) {
    scratch = arena.AllocSpan<uint64_t>(MaxValuesForStream(bytes.size()));
  }
  const DecodeResult result =
      kernel.decode(bytes.data(), bytes.size(), out.data(), out.size(),
                    scratch.data(), scratch.size());
  return {result.status, out.subspan(0, result.entries)};
}

CheckedDecode DecodeStreamChecked(std::span<const uint8_t> bytes,
                                  DecodeArena& arena) {
  return DecodeStreamCheckedWith(ActiveDecodeKernel(), bytes, arena);
}

}  // namespace tara::decode
