#include "core/serialization.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/varint.h"

namespace tara {
namespace {

constexpr char kMagic[] = "TARAKB1";

class Writer {
 public:
  void U64(uint64_t v) { varint::EncodeU64(v, &bytes_); }
  void F64(double v) {
    const uint64_t bits = std::bit_cast<uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
    }
  }
  void Items(const Itemset& items) {
    U64(items.size());
    // Delta-encode the sorted item ids.
    ItemId previous = 0;
    for (ItemId item : items) {
      U64(item - previous);
      previous = item;
    }
  }
  void Flush(std::ostream* out) {
    out->write(kMagic, sizeof(kMagic) - 1);
    out->write(reinterpret_cast<const char*>(bytes_.data()),
               static_cast<std::streamsize>(bytes_.size()));
  }

 private:
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(std::istream* in) {
    char magic[sizeof(kMagic) - 1];
    in->read(magic, sizeof(magic));
    TARA_CHECK(in->gcount() == sizeof(magic) &&
               std::memcmp(magic, kMagic, sizeof(magic)) == 0)
        << "not a TARA knowledge base stream";
    std::ostringstream rest;
    rest << in->rdbuf();
    const std::string data = rest.str();
    bytes_.assign(data.begin(), data.end());
  }

  uint64_t U64() { return varint::DecodeU64(bytes_.data(), bytes_.size(),
                                            &pos_); }
  double F64() {
    TARA_CHECK(pos_ + 8 <= bytes_.size()) << "truncated stream";
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }
  Itemset Items() {
    const uint64_t n = U64();
    Itemset items;
    items.reserve(n);
    ItemId previous = 0;
    for (uint64_t i = 0; i < n; ++i) {
      previous += static_cast<ItemId>(U64());
      items.push_back(previous);
    }
    return items;
  }
  bool Done() const { return pos_ == bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

void SaveKnowledgeBase(const TaraEngine& engine, std::ostream* out) {
  Writer w;
  const TaraEngine::Options& options = engine.options();
  w.F64(options.min_support_floor);
  w.F64(options.min_confidence_floor);
  w.U64(options.max_itemset_size);
  w.U64(options.build_content_index ? 1 : 0);

  // Catalog: every interned rule, id order.
  w.U64(engine.catalog().size());
  for (RuleId id = 0; id < engine.catalog().size(); ++id) {
    const Rule& rule = engine.catalog().rule(id);
    w.Items(rule.antecedent);
    w.Items(rule.consequent);
  }

  // Windows: size plus the (rule, counts) entries.
  w.U64(engine.window_count());
  for (WindowId window = 0; window < engine.window_count(); ++window) {
    w.U64(engine.archive().window_size(window));
    const auto& entries = engine.window_entries(window);
    w.U64(entries.size());
    for (const WindowIndex::Entry& e : entries) {
      w.U64(e.rule);
      w.U64(e.rule_count);
      w.U64(e.antecedent_count - e.rule_count);  // delta, always >= 0
    }
  }
  w.Flush(out);
}

TaraEngine LoadKnowledgeBase(std::istream* in,
                             obs::MetricsRegistry* metrics) {
  Reader r(in);
  TaraEngine::Options options;
  options.min_support_floor = r.F64();
  options.min_confidence_floor = r.F64();
  options.max_itemset_size = static_cast<uint32_t>(r.U64());
  options.build_content_index = r.U64() != 0;
  options.metrics = metrics;
  TaraEngine engine(options);

  const uint64_t rule_count = r.U64();
  std::vector<Rule> rules;
  rules.reserve(rule_count);
  for (uint64_t i = 0; i < rule_count; ++i) {
    Rule rule;
    rule.antecedent = r.Items();
    rule.consequent = r.Items();
    rules.push_back(std::move(rule));
  }

  const uint64_t windows = r.U64();
  for (uint64_t window = 0; window < windows; ++window) {
    const uint64_t total = r.U64();
    const uint64_t entries = r.U64();
    std::vector<TaraEngine::PrecomputedRule> precomputed;
    precomputed.reserve(entries);
    for (uint64_t i = 0; i < entries; ++i) {
      TaraEngine::PrecomputedRule p;
      const uint64_t id = r.U64();
      TARA_CHECK_LT(id, rules.size()) << "rule id out of range";
      p.rule = rules[id];
      p.rule_count = r.U64();
      p.antecedent_count = p.rule_count + r.U64();
      precomputed.push_back(std::move(p));
    }
    engine.AppendPrecomputedWindow(total, precomputed);
  }
  TARA_CHECK(r.Done()) << "trailing bytes in knowledge base stream";
  return engine;
}

std::string KnowledgeBaseToString(const TaraEngine& engine) {
  std::ostringstream out;
  SaveKnowledgeBase(engine, &out);
  return out.str();
}

TaraEngine KnowledgeBaseFromString(const std::string& bytes,
                                   obs::MetricsRegistry* metrics) {
  std::istringstream in(bytes);
  return LoadKnowledgeBase(&in, metrics);
}

}  // namespace tara
