#include "core/serialization.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace tara {

void SaveKnowledgeBase(const KnowledgeBaseSnapshot& snapshot,
                       std::ostream* out) {
  const std::string bytes = EncodeKnowledgeBase(snapshot);
  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void SaveKnowledgeBase(const TaraEngine& engine, std::ostream* out) {
  SaveKnowledgeBase(*engine.Snapshot(), out);
}

Expected<TaraEngine, LoadError> LoadKnowledgeBase(
    std::istream* in, obs::MetricsRegistry* metrics) {
  std::ostringstream buffer;
  buffer << in->rdbuf();
  if (in->bad()) {
    return LoadError{LoadError::Code::kIoError,
                     "read failed on the knowledge base stream"};
  }
  return DecodeKnowledgeBase(buffer.str(), metrics);
}

std::string KnowledgeBaseToString(const TaraEngine& engine) {
  return EncodeKnowledgeBase(*engine.Snapshot());
}

std::string KnowledgeBaseToString(const KnowledgeBaseSnapshot& snapshot) {
  return EncodeKnowledgeBase(snapshot);
}

Expected<TaraEngine, LoadError> KnowledgeBaseFromString(
    const std::string& bytes, obs::MetricsRegistry* metrics) {
  return DecodeKnowledgeBase(bytes, metrics);
}

}  // namespace tara
