#ifndef TARA_COMMON_THREAD_POOL_H_
#define TARA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace tara {

/// A fixed-size pool of worker threads with a shared FIFO task queue — no
/// work stealing, no priorities. Used by the offline build pipeline: tasks
/// are coarse (a whole window's mining, an EPS slice build, a sort chunk),
/// so a plain mutex-protected queue is never the bottleneck.
///
/// Thread-safety: Submit and ParallelFor may be called from any thread,
/// including from inside a pool task (ParallelFor then degrades to the
/// caller's thread to avoid queue-wait deadlocks; see below).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Drains nothing: outstanding tasks finish, queued tasks still run, then
  /// workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Splits [0, n) into at most `size() + 1` contiguous chunks and runs
  /// `body(chunk_index, begin, end)` for each, blocking until all chunks
  /// finish. The chunking is deterministic (depends only on n and the pool
  /// size), chunk 0 runs on the calling thread, and chunk indexes are
  /// dense — so callers can write per-chunk output slots and concatenate
  /// them in order to get a result identical to a sequential [0, n) sweep.
  ///
  /// When called from inside a pool worker the whole range runs inline as
  /// one chunk: a worker blocking on sub-chunks queued behind other
  /// workers' sub-chunks could otherwise deadlock the pool.
  void ParallelFor(size_t n,
                   const std::function<void(size_t chunk, size_t begin,
                                            size_t end)>& body);

  /// Number of chunks ParallelFor(n, ...) will use from a non-worker
  /// thread, so callers can pre-size per-chunk output slots.
  size_t ChunkCountFor(size_t n) const;

  /// True when the calling thread is one of this process's pool workers.
  static bool InWorkerThread();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace tara

#endif  // TARA_COMMON_THREAD_POOL_H_
