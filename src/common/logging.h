#ifndef TARA_COMMON_LOGGING_H_
#define TARA_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file
/// Minimal CHECK-style invariant macros. The library does not throw
/// exceptions; violated invariants abort with a message identifying the
/// failing expression and source location. DCHECK compiles away in NDEBUG
/// builds so hot paths stay cheap in release mode.

namespace tara::internal {

/// Aborts the process after printing a CHECK failure message.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& message);

/// Stream-capable message builder used by the CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace tara::internal

/// Aborts with a diagnostic if `condition` is false. Usable as a stream:
/// `TARA_CHECK(n > 0) << "bad n: " << n;`
#define TARA_CHECK(condition)                                              \
  if (condition) {                                                        \
  } else                                                                  \
    ::tara::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define TARA_CHECK_EQ(a, b) TARA_CHECK((a) == (b))
#define TARA_CHECK_NE(a, b) TARA_CHECK((a) != (b))
#define TARA_CHECK_LT(a, b) TARA_CHECK((a) < (b))
#define TARA_CHECK_LE(a, b) TARA_CHECK((a) <= (b))
#define TARA_CHECK_GT(a, b) TARA_CHECK((a) > (b))
#define TARA_CHECK_GE(a, b) TARA_CHECK((a) >= (b))

#ifdef NDEBUG
#define TARA_DCHECK(condition) TARA_CHECK(true)
#else
#define TARA_DCHECK(condition) TARA_CHECK(condition)
#endif

#endif  // TARA_COMMON_LOGGING_H_
