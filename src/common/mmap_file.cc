#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tara {

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      open_(std::exchange(other.open_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    open_ = std::exchange(other.open_, false);
  }
  return *this;
}

bool MappedFile::Open(const std::string& path, std::string* error) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) {
      *error = "cannot stat " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    size_ = 0;
    data_ = nullptr;
    open_ = true;
    return true;
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The fd is not needed once the mapping exists.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    if (error != nullptr) {
      *error = "cannot mmap " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  data_ = static_cast<const uint8_t*>(mapping);
  size_ = size;
  open_ = true;
  return true;
}

void MappedFile::Close() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

}  // namespace tara
