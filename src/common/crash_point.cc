#include "common/crash_point.h"

#include <csignal>
#include <cstdlib>

#include <atomic>

namespace tara {
namespace {

// Remaining crossings before the kill; negative means disarmed. Relaxed
// is enough: the injector is armed before the exercised code runs, in
// the same thread or before a fork.
std::atomic<long> g_remaining{-1};

}  // namespace

void CrashPoint(const char* /*site*/) {
  if (g_remaining.load(std::memory_order_relaxed) < 0) return;
  if (g_remaining.fetch_sub(1, std::memory_order_relaxed) == 0) {
    // SIGKILL cannot be caught: no destructors, no stream flushes —
    // the closest user-space stand-in for a power cut.
    std::raise(SIGKILL);
  }
}

void ArmCrashPoint(long index) {
  g_remaining.store(index, std::memory_order_relaxed);
}

void ArmCrashPointFromEnv() {
  const char* value = std::getenv("TARA_CRASH_AT");
  if (value == nullptr || *value == '\0') return;
  ArmCrashPoint(std::atol(value));
}

}  // namespace tara
