#include "common/logging.h"

namespace tara::internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& message) {
  std::fprintf(stderr, "TARA_CHECK failed at %s:%d: %s", file, line, expr);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace tara::internal
