#include "common/rng.h"

#include <cmath>

namespace tara {

uint32_t Rng::NextPoisson(double mean) {
  TARA_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    uint32_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation for large means.
  const double u1 = NextDouble();
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-18)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z;
  return value <= 0.0 ? 0u : static_cast<uint32_t>(value + 0.5);
}

uint64_t Rng::NextZipf(uint64_t n, double alpha) {
  TARA_DCHECK(n > 0);
  if (n == 1) return 0;
  // Rejection sampling against the continuous bounding density
  // f(x) = C / x^alpha on [1, n+1); accepted integer rank is floor(x) - 1.
  // This is exact for the discrete Zipf distribution and needs no tables.
  const double exponent = 1.0 - alpha;
  for (;;) {
    double x;
    if (std::fabs(exponent) < 1e-12) {
      // alpha == 1: inverse CDF of 1/x is exponential of a uniform.
      x = std::exp(NextDouble() * std::log(static_cast<double>(n) + 1.0));
    } else {
      const double top = std::pow(static_cast<double>(n) + 1.0, exponent);
      x = std::pow(1.0 + NextDouble() * (top - 1.0), 1.0 / exponent);
    }
    const uint64_t k = static_cast<uint64_t>(x);  // in [1, n]
    // Accept with probability (k / x)^alpha: ratio of the discrete mass at k
    // to the bounding continuous density integrated over [k, k+1).
    const double accept = std::pow(static_cast<double>(k) / x, alpha);
    if (NextDouble() < accept) return k - 1;
  }
}

}  // namespace tara
