#ifndef TARA_COMMON_MMAP_FILE_H_
#define TARA_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tara {

/// A read-only memory-mapped file (RAII, move-only). Opening maps the
/// whole file PROT_READ without touching its contents — no payload bytes
/// are read (and no pages are faulted in) until the caller dereferences
/// them, which is what makes an O(1) knowledge-base open possible. The
/// mapping start is page-aligned by the kernel; callers needing aligned
/// interior offsets must arrange them in the file layout themselves.
///
/// Lifetime rule: every pointer into data() is valid exactly as long as
/// this object lives. Holders of derived views (SegmentView in
/// kb_blocks.h) must co-own or outlive-check the MappedFile.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. On failure returns false and fills `error`
  /// with an errno-grade message. A zero-length file maps successfully
  /// with data() == nullptr and size() == 0.
  bool Open(const std::string& path, std::string* error);

  /// Releases the mapping early (idempotent).
  void Close();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool open_ = false;
};

}  // namespace tara

#endif  // TARA_COMMON_MMAP_FILE_H_
