#ifndef TARA_COMMON_STOPWATCH_H_
#define TARA_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace tara {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tara

#endif  // TARA_COMMON_STOPWATCH_H_
