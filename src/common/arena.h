#ifndef TARA_COMMON_ARENA_H_
#define TARA_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace tara {

/// Bump allocator for per-query decode scratch: the TAR Archive's
/// DecodeInto, trajectory assembly, and the multi-window rule merges all
/// carve their transient output out of one of these instead of
/// materializing a fresh std::vector per call.
///
/// ## Lifetime contract
///
/// - Every span handed out stays valid until the NEXT Reset() (or
///   destruction). Reset() invalidates all of them at once — callers that
///   loop (one decode per rule, say) Reset() at the top of each iteration
///   and must not hold spans across iterations.
/// - Memory is never returned mid-query: allocation is a pointer bump,
///   deallocation is the single Reset(). The first kInlineBytes live on
///   the arena itself (typically the caller's stack frame), so small
///   queries never touch the heap at all.
/// - Reset() retains capacity. After one warm pass, a repeat of the same
///   workload allocates nothing: overflow blocks are coalesced into one
///   block sized to the previous high-water mark.
/// - NOT thread-safe. One arena per query, on the thread running it.
class DecodeArena {
 public:
  /// Queries decoding a handful of entries (the common interactive case)
  /// fit here and never heap-allocate.
  static constexpr size_t kInlineBytes = 4096;

  DecodeArena() = default;
  DecodeArena(const DecodeArena&) = delete;
  DecodeArena& operator=(const DecodeArena&) = delete;

  /// Uninitialized storage for `count` objects of trivially-destructible
  /// type T, aligned for T. The arena never runs destructors.
  template <typename T>
  std::span<T> AllocSpan(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "the arena never runs destructors");
    T* data =
        reinterpret_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    return std::span<T>(data, count);
  }

  /// Invalidates every outstanding span and rewinds to empty, keeping
  /// capacity (coalescing overflow blocks so steady-state reuse stays
  /// allocation-free).
  void Reset();

  /// Bytes handed out since the last Reset().
  size_t used_bytes() const { return used_bytes_; }
  /// Largest used_bytes() ever observed — what Reset() sizes the single
  /// retained overflow block to.
  size_t high_water_bytes() const { return high_water_bytes_; }
  /// Heap blocks currently retained (0 until a query outgrows the inline
  /// buffer; 1 in steady state after).
  size_t heap_block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> bytes;
    size_t capacity = 0;
  };

  uint8_t* Allocate(size_t bytes, size_t alignment);
  /// Slow path: moves the cursor into the next retained block (Reset()
  /// keeps capacity), opening a new one only when none fits `bytes`.
  uint8_t* AllocateSlow(size_t bytes, size_t alignment);

  alignas(alignof(std::max_align_t)) uint8_t inline_buffer_[kInlineBytes];
  /// Bump cursor within the current block (inline buffer first).
  uint8_t* cursor_ = inline_buffer_;
  uint8_t* cursor_end_ = inline_buffer_ + kInlineBytes;
  /// Overflow blocks, in allocation order; blocks_[0, entered_blocks_)
  /// have been carved from since the last Reset(), the rest are retained
  /// capacity waiting for reuse.
  std::vector<Block> blocks_;
  size_t entered_blocks_ = 0;
  size_t used_bytes_ = 0;
  size_t high_water_bytes_ = 0;
};

}  // namespace tara

#endif  // TARA_COMMON_ARENA_H_
