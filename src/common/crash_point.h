#ifndef TARA_COMMON_CRASH_POINT_H_
#define TARA_COMMON_CRASH_POINT_H_

/// Crash-point injection for durability tests.
///
/// The persistence path calls CrashPoint("site") between every pair of
/// durability steps (after a write, before the fsync; after the fsync,
/// before the rename; ...). In production builds the call is a single
/// relaxed atomic load and branch. Tests arm the N-th crossing — via
/// ArmCrashPoint(n) in a forked child, or the TARA_CRASH_AT environment
/// variable for subprocess binaries — and the armed crossing terminates
/// the process with SIGKILL, exactly as a power failure would: no
/// destructors, no buffered-stream flushes, no atexit handlers.
namespace tara {

/// Kills the process (SIGKILL) if the armed crossing count reaches zero.
/// `site` names the durability step just completed, for test diagnostics.
void CrashPoint(const char* site);

/// Arms the injector: the `index`-th CrashPoint crossing from now (0-based)
/// kills the process. Call in a freshly forked child before exercising the
/// persistence path. A negative index disarms.
void ArmCrashPoint(long index);

/// Reads TARA_CRASH_AT from the environment and arms accordingly; no-op
/// when the variable is unset. Called by binaries that want env-driven
/// injection (the smoke harness); unit tests use ArmCrashPoint directly.
void ArmCrashPointFromEnv();

}  // namespace tara

#endif  // TARA_COMMON_CRASH_POINT_H_
