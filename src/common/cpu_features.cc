#include "common/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace tara {
namespace {

CpuFeatures Detect() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  features.sse41 = __builtin_cpu_supports("sse4.1") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
  return features;
}

bool ReadForceScalarEnv() {
  const char* value = std::getenv("TARA_FORCE_SCALAR");
  if (value == nullptr || value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool ScalarDecodeForced() {
  static const bool forced = ReadForceScalarEnv();
  return forced;
}

}  // namespace tara
