#ifndef TARA_COMMON_RNG_H_
#define TARA_COMMON_RNG_H_

#include <cstdint>

#include "common/logging.h"

namespace tara {

/// Deterministic, fast pseudo-random generator (SplitMix64).
///
/// All synthetic-data generators and sampling code in this repository draw
/// from Rng rather than std::mt19937 so that datasets, tests, and benchmark
/// workloads are bit-reproducible across platforms and standard-library
/// versions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) {
    TARA_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (< 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Poisson draw via inversion (suitable for small means used by the
  /// Quest generator).
  uint32_t NextPoisson(double mean);

  /// Geometric-like power-law rank draw in [0, n): item `r` has probability
  /// proportional to 1/(r+1)^alpha. Uses inverse-CDF over a precomputable
  /// approximation; exact sampling is done by rejection for small n.
  uint64_t NextZipf(uint64_t n, double alpha);

 private:
  uint64_t state_;
};

}  // namespace tara

#endif  // TARA_COMMON_RNG_H_
