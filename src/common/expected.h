#ifndef TARA_COMMON_EXPECTED_H_
#define TARA_COMMON_EXPECTED_H_

#include <utility>
#include <variant>

#include "common/logging.h"

namespace tara {

/// Value-or-error return type for the online query API (a minimal
/// std::expected, which this toolchain's standard library predates).
///
/// A function returning Expected<T, E> NEVER aborts on invalid caller
/// input — it returns the E describing what was wrong, so a serving
/// process can reject one malformed request and keep answering the rest.
/// Accessing value() on an error (i.e. skipping the has_value() check) is
/// a caller bug and CHECK-aborts with the error's message, which keeps
/// tests and one-shot tools terse without weakening the serving contract.
///
/// T and E must be distinct types (true for every engine query: results
/// are vectors/structs, the error is QueryError).
template <typename T, typename E>
class Expected {
 public:
  /// Implicit from a success value or an error — `return rules;` and
  /// `return QueryError{...};` both just work.
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    CheckHasValue();
    return std::get<0>(data_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<0>(data_);
  }
  /// By value, not T&&: `for (auto x : f().value())` must keep iterating a
  /// live object after the temporary Expected is destroyed at the end of
  /// the range-initializer (C++20 does not extend its lifetime).
  T value() && {
    CheckHasValue();
    return std::get<0>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  const E& error() const {
    TARA_CHECK(!has_value()) << "Expected::error() on a success value";
    return std::get<1>(data_);
  }

  template <typename U>
  T value_or(U&& fallback) const& {
    return has_value() ? std::get<0>(data_)
                       : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void CheckHasValue() const {
    if (has_value()) return;
    const E& e = std::get<1>(data_);
    if constexpr (requires { e.message; }) {
      TARA_CHECK(false) << "Expected::value() on an error: " << e.message;
    } else {
      TARA_CHECK(false) << "Expected::value() on an error";
    }
  }

  std::variant<T, E> data_;
};

}  // namespace tara

#endif  // TARA_COMMON_EXPECTED_H_
