#ifndef TARA_COMMON_VARINT_H_
#define TARA_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tara {

/// LEB128-style variable-length integer codec.
///
/// The TAR Archive stores per-window rule counts as zigzagged deltas encoded
/// with this codec; small deltas (the common case for stable rules) take one
/// byte instead of eight.
namespace varint {

/// Appends the unsigned LEB128 encoding of `value` to `out`.
void EncodeU64(uint64_t value, std::vector<uint8_t>* out);

/// Decodes an unsigned LEB128 value starting at `data[*pos]`, advancing
/// `*pos` past it. Behavior is checked: a truncated stream aborts.
uint64_t DecodeU64(const uint8_t* data, size_t size, size_t* pos);

/// Abort-free variant for decoding untrusted bytes (the knowledge-base
/// loader): returns false on a truncated or overlong varint, leaving
/// `*pos` unspecified; on success stores the value and advances `*pos`.
bool TryDecodeU64(const uint8_t* data, size_t size, size_t* pos,
                  uint64_t* out);

/// Zigzag maps signed values to unsigned so small-magnitude negatives stay
/// short: 0→0, -1→1, 1→2, -2→3, ...
inline uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

/// Inverse of ZigzagEncode.
inline int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Appends the zigzag + LEB128 encoding of a signed value.
inline void EncodeS64(int64_t value, std::vector<uint8_t>* out) {
  EncodeU64(ZigzagEncode(value), out);
}

/// Decodes a signed value written by EncodeS64.
inline int64_t DecodeS64(const uint8_t* data, size_t size, size_t* pos) {
  return ZigzagDecode(DecodeU64(data, size, pos));
}

}  // namespace varint
}  // namespace tara

#endif  // TARA_COMMON_VARINT_H_
