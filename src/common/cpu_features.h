#ifndef TARA_COMMON_CPU_FEATURES_H_
#define TARA_COMMON_CPU_FEATURES_H_

namespace tara {

/// ISA extensions the decode kernels can dispatch on. Detected once per
/// process; all-false on non-x86 builds so callers fall back to the
/// portable scalar path without per-site #ifdefs.
struct CpuFeatures {
  bool sse41 = false;
  bool avx2 = false;
};

/// Cached runtime CPUID probe.
const CpuFeatures& GetCpuFeatures();

/// True when the TARA_FORCE_SCALAR environment variable is set to a
/// non-empty value other than "0". Pins kernel dispatch to the scalar
/// reference so CI can exercise the fallback on SIMD-capable hosts.
/// Read once and cached; changing the variable mid-process has no effect.
bool ScalarDecodeForced();

}  // namespace tara

#endif  // TARA_COMMON_CPU_FEATURES_H_
