#include "common/arena.h"

#include <algorithm>
#include <cstdint>

namespace tara {
namespace {

constexpr size_t kFirstHeapBlockBytes = 8192;

size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

uint8_t* DecodeArena::Allocate(size_t bytes, size_t alignment) {
  uint8_t* aligned = reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(cursor_), alignment));
  if (aligned + bytes <= cursor_end_) {
    used_bytes_ += bytes + static_cast<size_t>(aligned - cursor_);
    cursor_ = aligned + bytes;
    high_water_bytes_ = std::max(high_water_bytes_, used_bytes_);
    return aligned;
  }
  return AllocateSlow(bytes, alignment);
}

uint8_t* DecodeArena::AllocateSlow(size_t bytes, size_t alignment) {
  // Reset() retains blocks; step into them before growing, so a warm
  // arena repeats its workload without touching the heap.
  while (entered_blocks_ < blocks_.size()) {
    const Block& next = blocks_[entered_blocks_++];
    uint8_t* aligned = reinterpret_cast<uint8_t*>(
        AlignUp(reinterpret_cast<uintptr_t>(next.bytes.get()), alignment));
    if (aligned + bytes <= next.bytes.get() + next.capacity) {
      cursor_ = aligned + bytes;
      cursor_end_ = next.bytes.get() + next.capacity;
      used_bytes_ += bytes;
      high_water_bytes_ = std::max(high_water_bytes_, used_bytes_);
      return aligned;
    }
  }

  size_t wanted = std::max(bytes + alignment, kFirstHeapBlockBytes);
  if (!blocks_.empty()) {
    wanted = std::max(wanted, blocks_.back().capacity * 2);
  }
  Block block;
  block.bytes = std::make_unique<uint8_t[]>(wanted);
  block.capacity = wanted;
  cursor_ = block.bytes.get();
  cursor_end_ = cursor_ + wanted;
  blocks_.push_back(std::move(block));
  entered_blocks_ = blocks_.size();

  uint8_t* aligned = reinterpret_cast<uint8_t*>(
      AlignUp(reinterpret_cast<uintptr_t>(cursor_), alignment));
  cursor_ = aligned + bytes;
  used_bytes_ += bytes;
  high_water_bytes_ = std::max(high_water_bytes_, used_bytes_);
  return aligned;
}

void DecodeArena::Reset() {
  if (blocks_.size() > 1 ||
      (blocks_.size() == 1 &&
       blocks_.front().capacity < high_water_bytes_)) {
    // Coalesce: one block sized to the high-water mark, so the next pass
    // of the same workload bumps through a single allocation-free run.
    const size_t wanted =
        std::max(AlignUp(high_water_bytes_, alignof(std::max_align_t)),
                 kFirstHeapBlockBytes);
    blocks_.clear();
    Block block;
    block.bytes = std::make_unique<uint8_t[]>(wanted);
    block.capacity = wanted;
    blocks_.push_back(std::move(block));
  }
  cursor_ = inline_buffer_;
  cursor_end_ = inline_buffer_ + kInlineBytes;
  entered_blocks_ = 0;
  used_bytes_ = 0;
}

}  // namespace tara
