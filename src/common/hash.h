#ifndef TARA_COMMON_HASH_H_
#define TARA_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tara {

/// 64-bit mix used to combine hash values (based on MurmurHash3 finalizer).
inline uint64_t HashMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Combines a value into a running hash seed.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

/// Order-sensitive hash of an integer sequence (itemsets are kept sorted, so
/// this doubles as a set hash for canonical itemsets).
template <typename Int>
uint64_t HashSpan(const std::vector<Int>& values) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const Int v : values) h = HashCombine(h, static_cast<uint64_t>(v));
  return h;
}

/// The same mixing over raw bytes; the checksum used by the TARAKB2
/// segment format and the write-ahead log.
inline uint64_t HashBytes(const uint8_t* data, size_t size) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < size; ++i) h = HashCombine(h, data[i]);
  return h;
}

}  // namespace tara

#endif  // TARA_COMMON_HASH_H_
