#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace tara {
namespace {

thread_local bool tls_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(uint32_t num_threads) {
  const uint32_t n = std::max<uint32_t>(1, num_threads);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorkerThread() { return tls_in_worker; }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TARA_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

size_t ThreadPool::ChunkCountFor(size_t n) const {
  return std::min<size_t>(n, size() + 1);
}

void ThreadPool::ParallelFor(
    size_t n,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body) {
  if (n == 0) return;
  if (InWorkerThread()) {
    body(0, 0, n);
    return;
  }
  const size_t chunks = ChunkCountFor(n);
  if (chunks <= 1) {
    body(0, 0, n);
    return;
  }
  // Even split; the first (n % chunks) chunks take one extra element.
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  size_t begin = base + (0 < extra ? 1 : 0);  // chunk 0 runs on the caller
  const size_t chunk0_end = begin;
  for (size_t c = 1; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    futures.push_back(Submit([&body, c, begin, end] { body(c, begin, end); }));
    begin = end;
  }
  body(0, 0, chunk0_end);
  for (std::future<void>& f : futures) f.get();
}

}  // namespace tara
