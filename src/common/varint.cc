#include "common/varint.h"

#include "common/logging.h"

namespace tara::varint {

void EncodeU64(uint64_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint64_t DecodeU64(const uint8_t* data, size_t size, size_t* pos) {
  uint64_t result = 0;
  int shift = 0;
  for (;;) {
    TARA_CHECK(*pos < size) << "truncated varint stream";
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    TARA_CHECK(shift < 64) << "overlong varint";
  }
  return result;
}

bool TryDecodeU64(const uint8_t* data, size_t size, size_t* pos,
                  uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= size) return false;
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return false;
  }
  *out = result;
  return true;
}

}  // namespace tara::varint
