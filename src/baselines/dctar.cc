#include "baselines/dctar.h"

#include <algorithm>

#include "mining/fp_growth.h"

namespace tara {

std::vector<MinedRule> DctarBaseline::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  const WindowInfo& info = data_->window(w);
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = MinCountForSupport(setting.min_support, info.size());
  options.max_size = max_itemset_size_;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(data_->database(), info.begin, info.end, options);
  return GenerateRules(frequent, setting.min_confidence);
}

std::vector<Rule> DctarBaseline::MineWindowRules(
    WindowId w, const ParameterSetting& setting) const {
  std::vector<Rule> rules;
  for (const MinedRule& r : MineWindow(w, setting)) {
    rules.push_back(Rule{r.antecedent, r.consequent});
  }
  return rules;
}

TrajectoryPoint DctarBaseline::EvaluateRule(const Rule& rule,
                                            WindowId w) const {
  const WindowInfo& info = data_->window(w);
  const Itemset whole = Union(rule.antecedent, rule.consequent);
  const size_t rule_count =
      data_->database().CountContaining(whole, info.begin, info.end);
  const size_t antecedent_count = data_->database().CountContaining(
      rule.antecedent, info.begin, info.end);
  TrajectoryPoint point;
  point.window = w;
  point.present = rule_count > 0;
  point.support = info.size() == 0 ? 0.0
                                   : static_cast<double>(rule_count) /
                                         static_cast<double>(info.size());
  point.confidence = antecedent_count == 0
                         ? 0.0
                         : static_cast<double>(rule_count) /
                               static_cast<double>(antecedent_count);
  return point;
}

std::vector<std::vector<TrajectoryPoint>> DctarBaseline::TrajectoryQuery(
    WindowId anchor, const ParameterSetting& setting,
    const std::vector<WindowId>& horizon) const {
  const std::vector<Rule> rules = MineWindowRules(anchor, setting);
  std::vector<std::vector<TrajectoryPoint>> trajectories;
  trajectories.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::vector<TrajectoryPoint> trajectory;
    trajectory.reserve(horizon.size());
    for (WindowId w : horizon) trajectory.push_back(EvaluateRule(rule, w));
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

std::pair<size_t, size_t> DctarBaseline::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const std::vector<WindowId>& windows) const {
  // Exact-match combination: rule must satisfy the setting in all windows.
  auto mine_all = [&](const ParameterSetting& setting) {
    bool first_window = true;
    std::vector<Rule> current;
    for (WindowId w : windows) {
      std::vector<Rule> rules = MineWindowRules(w, setting);
      auto rule_less = [](const Rule& a, const Rule& b) {
        if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
        return a.consequent < b.consequent;
      };
      std::sort(rules.begin(), rules.end(), rule_less);
      if (first_window) {
        current = std::move(rules);
        first_window = false;
      } else {
        std::vector<Rule> merged;
        std::set_intersection(current.begin(), current.end(), rules.begin(),
                              rules.end(), std::back_inserter(merged),
                              rule_less);
        current = std::move(merged);
      }
    }
    return current;
  };

  const std::vector<Rule> a = mine_all(first);
  const std::vector<Rule> b = mine_all(second);
  auto rule_less = [](const Rule& x, const Rule& y) {
    if (x.antecedent != y.antecedent) return x.antecedent < y.antecedent;
    return x.consequent < y.consequent;
  };
  std::vector<Rule> only_a;
  std::vector<Rule> only_b;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a), rule_less);
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b), rule_less);
  return {only_a.size(), only_b.size()};
}

}  // namespace tara
