#include "baselines/hmine_baseline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mining/h_mine.h"

namespace tara {

void HMineBaseline::AppendWindow(const TransactionDatabase& db, size_t begin,
                                 size_t end) {
  HMineMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = MinCountForSupport(min_support_floor_, end - begin);
  options.max_size = max_itemset_size_;
  WindowStore store;
  store.itemsets = miner.Mine(db, begin, end, options);
  store.index = std::make_unique<ItemsetCountIndex>(store.itemsets);
  store.total_transactions = end - begin;
  windows_.push_back(std::move(store));
}

HMineBaseline::BuildStats HMineBaseline::Build(const EvolvingDatabase& data) {
  BuildStats stats;
  Stopwatch timer;
  for (WindowId w = 0; w < data.window_count(); ++w) {
    const WindowInfo& info = data.window(w);
    AppendWindow(data.database(), info.begin, info.end);
  }
  stats.itemset_seconds = timer.ElapsedSeconds();
  stats.itemset_count = StoredItemsetCount();
  return stats;
}

std::vector<MinedRule> HMineBaseline::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  TARA_CHECK_LT(w, windows_.size());
  TARA_CHECK(setting.min_support + 1e-12 >= min_support_floor_)
      << "query support below the pregeneration floor";
  const WindowStore& store = windows_[w];
  const uint64_t min_count =
      MinCountForSupport(setting.min_support, store.total_transactions);
  // Filter stored itemsets to the query support, then derive rules —
  // the query-time task that TARA moves offline.
  std::vector<FrequentItemset> qualifying;
  qualifying.reserve(store.itemsets.size());
  for (const FrequentItemset& f : store.itemsets) {
    if (f.count >= min_count) qualifying.push_back(f);
  }
  return GenerateRules(qualifying, setting.min_confidence);
}

TrajectoryPoint HMineBaseline::EvaluateRule(const Rule& rule,
                                            WindowId w) const {
  TARA_CHECK_LT(w, windows_.size());
  const WindowStore& store = windows_[w];
  const Itemset whole = Union(rule.antecedent, rule.consequent);
  const uint64_t rule_count = store.index->Count(whole);
  const uint64_t antecedent_count = store.index->Count(rule.antecedent);
  TrajectoryPoint point;
  point.window = w;
  point.present = rule_count > 0;
  point.support = store.total_transactions == 0
                      ? 0.0
                      : static_cast<double>(rule_count) /
                            static_cast<double>(store.total_transactions);
  point.confidence = antecedent_count == 0
                         ? 0.0
                         : static_cast<double>(rule_count) /
                               static_cast<double>(antecedent_count);
  return point;
}

std::vector<std::vector<TrajectoryPoint>> HMineBaseline::TrajectoryQuery(
    WindowId anchor, const ParameterSetting& setting,
    const std::vector<WindowId>& horizon) const {
  const std::vector<MinedRule> rules = MineWindow(anchor, setting);
  std::vector<std::vector<TrajectoryPoint>> trajectories;
  trajectories.reserve(rules.size());
  for (const MinedRule& mined : rules) {
    const Rule rule{mined.antecedent, mined.consequent};
    std::vector<TrajectoryPoint> trajectory;
    trajectory.reserve(horizon.size());
    for (WindowId w : horizon) trajectory.push_back(EvaluateRule(rule, w));
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

std::pair<size_t, size_t> HMineBaseline::CompareSettings(
    const ParameterSetting& first, const ParameterSetting& second,
    const std::vector<WindowId>& windows) const {
  auto rule_less = [](const Rule& a, const Rule& b) {
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  };
  auto mine_all = [&](const ParameterSetting& setting) {
    std::vector<Rule> current;
    bool first_window = true;
    for (WindowId w : windows) {
      std::vector<Rule> rules;
      for (const MinedRule& mined : MineWindow(w, setting)) {
        rules.push_back(Rule{mined.antecedent, mined.consequent});
      }
      std::sort(rules.begin(), rules.end(), rule_less);
      if (first_window) {
        current = std::move(rules);
        first_window = false;
      } else {
        std::vector<Rule> merged;
        std::set_intersection(current.begin(), current.end(), rules.begin(),
                              rules.end(), std::back_inserter(merged),
                              rule_less);
        current = std::move(merged);
      }
    }
    return current;
  };

  const std::vector<Rule> a = mine_all(first);
  const std::vector<Rule> b = mine_all(second);
  std::vector<Rule> only_a;
  std::vector<Rule> only_b;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(only_a), rule_less);
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(only_b), rule_less);
  return {only_a.size(), only_b.size()};
}

size_t HMineBaseline::StoredItemsetCount() const {
  size_t n = 0;
  for (const WindowStore& w : windows_) n += w.itemsets.size();
  return n;
}

size_t HMineBaseline::ApproximateBytes() const {
  size_t bytes = 0;
  for (const WindowStore& w : windows_) {
    for (const FrequentItemset& f : w.itemsets) {
      bytes += sizeof(FrequentItemset) + f.items.size() * sizeof(ItemId);
    }
  }
  return bytes;
}

}  // namespace tara
