#ifndef TARA_BASELINES_HMINE_BASELINE_H_
#define TARA_BASELINES_HMINE_BASELINE_H_

#include <memory>
#include <vector>

#include "core/tara_engine.h"
#include "mining/rule_generation.h"
#include "txdb/evolving_database.h"

namespace tara {

/// H-Mine baseline (Section 2.5.2, after [111]): pregenerates the frequent
/// itemsets of every window offline with the H-Mine algorithm and stores
/// them; rule derivation remains a *query-time* task. Faster than DCTAR by
/// skipping itemset mining online, but still orders of magnitude slower
/// than TARA because every request re-enumerates rules from the itemsets.
class HMineBaseline {
 public:
  struct BuildStats {
    double itemset_seconds = 0;
    size_t itemset_count = 0;  ///< total stored itemset instances
  };

  HMineBaseline(double min_support_floor, uint32_t max_itemset_size)
      : min_support_floor_(min_support_floor),
        max_itemset_size_(max_itemset_size) {}

  /// Offline phase: mines and stores each window's frequent itemsets.
  BuildStats Build(const EvolvingDatabase& data);

  /// Appends one more window (evolving arrival).
  void AppendWindow(const TransactionDatabase& db, size_t begin, size_t end);

  /// Online: derives the ruleset of window `w` under `setting` from the
  /// stored itemsets.
  std::vector<MinedRule> MineWindow(WindowId w,
                                    const ParameterSetting& setting) const;

  /// Q1 equivalent: mine the anchor, then look each rule's counts up in the
  /// other windows' stored itemsets (no raw scan — the itemset store serves
  /// as H-Mine's "index").
  std::vector<std::vector<TrajectoryPoint>> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const std::vector<WindowId>& horizon) const;

  /// Q2 equivalent over exact-match windows; returns diff sizes.
  std::pair<size_t, size_t> CompareSettings(
      const ParameterSetting& first, const ParameterSetting& second,
      const std::vector<WindowId>& windows) const;

  /// Evaluates one rule in one window from the stored itemsets.
  TrajectoryPoint EvaluateRule(const Rule& rule, WindowId w) const;

  uint32_t window_count() const {
    return static_cast<uint32_t>(windows_.size());
  }

  /// Total stored itemset instances (Figure 12's H-Mine index size).
  size_t StoredItemsetCount() const;

  /// Approximate bytes of the itemset store.
  size_t ApproximateBytes() const;

 private:
  struct WindowStore {
    std::vector<FrequentItemset> itemsets;
    std::unique_ptr<ItemsetCountIndex> index;
    uint64_t total_transactions = 0;
  };

  double min_support_floor_;
  uint32_t max_itemset_size_;
  std::vector<WindowStore> windows_;
};

}  // namespace tara

#endif  // TARA_BASELINES_HMINE_BASELINE_H_
