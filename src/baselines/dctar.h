#ifndef TARA_BASELINES_DCTAR_H_
#define TARA_BASELINES_DCTAR_H_

#include <vector>

#include "core/tara_engine.h"
#include "mining/rule_generation.h"
#include "txdb/evolving_database.h"

namespace tara {

/// DCTAR baseline (Section 2.5.2): derives the ruleset directly from the
/// raw data for every request — no preprocessing, no index. Each mining
/// request runs FP-Growth at the query thresholds over the requested
/// window; trajectory examination re-scans the raw transactions of every
/// other window. This is the "one-at-a-time request" model whose latency
/// motivates TARA.
class DctarBaseline {
 public:
  /// `data` must outlive the baseline.
  DctarBaseline(const EvolvingDatabase* data, uint32_t max_itemset_size)
      : data_(data), max_itemset_size_(max_itemset_size) {}

  /// Mines window `w` from scratch under `setting`.
  std::vector<MinedRule> MineWindow(WindowId w,
                                    const ParameterSetting& setting) const;

  /// Q1 equivalent: mine the anchor window, then evaluate every produced
  /// rule's (support, confidence) in each horizon window by scanning raw
  /// transactions. Returns the trajectories (anchoring rules included).
  std::vector<std::vector<TrajectoryPoint>> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const std::vector<WindowId>& horizon) const;

  /// Q2 equivalent: mine both settings over `windows` from scratch
  /// (exact-match combination) and return the sizes of the two set
  /// differences.
  std::pair<size_t, size_t> CompareSettings(
      const ParameterSetting& first, const ParameterSetting& second,
      const std::vector<WindowId>& windows) const;

  /// Evaluates a single rule's measures in a window by raw scans.
  TrajectoryPoint EvaluateRule(const Rule& rule, WindowId w) const;

 private:
  std::vector<Rule> MineWindowRules(WindowId w,
                                    const ParameterSetting& setting) const;

  const EvolvingDatabase* data_;
  uint32_t max_itemset_size_;
};

}  // namespace tara

#endif  // TARA_BASELINES_DCTAR_H_
