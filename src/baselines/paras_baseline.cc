#include "baselines/paras_baseline.h"

#include "common/logging.h"
#include "common/stopwatch.h"
#include "mining/fp_growth.h"
#include "mining/rule_generation.h"

namespace tara {

ParasBaseline::BuildStats ParasBaseline::Build(const EvolvingDatabase* data) {
  TARA_CHECK(data != nullptr && data->window_count() > 0);
  data_ = data;
  indexed_window_ = data->window_count() - 1;

  BuildStats stats;
  Stopwatch timer;
  const WindowInfo& info = data->window(indexed_window_);
  FpGrowthMiner miner;
  FrequentItemsetMiner::Options options;
  options.min_count = MinCountForSupport(min_support_floor_, info.size());
  options.max_size = max_itemset_size_;
  const std::vector<FrequentItemset> frequent =
      miner.Mine(data->database(), info.begin, info.end, options);
  const std::vector<MinedRule> rules =
      GenerateRules(frequent, min_confidence_floor_);

  std::vector<WindowIndex::Entry> entries;
  entries.reserve(rules.size());
  for (const MinedRule& r : rules) {
    const RuleId id = catalog_.Intern(Rule{r.antecedent, r.consequent});
    entries.push_back(
        WindowIndex::Entry{id, r.rule_count, r.antecedent_count});
  }
  index_.Build(entries, info.size(), /*build_content_index=*/false, catalog_);
  stats.seconds = timer.ElapsedSeconds();
  stats.rule_count = rules.size();
  return stats;
}

std::vector<Rule> ParasBaseline::MineWindow(
    WindowId w, const ParameterSetting& setting) const {
  TARA_CHECK(data_ != nullptr) << "Build first";
  std::vector<Rule> rules;
  if (w == indexed_window_) {
    std::vector<RuleId> ids;
    index_.CollectRules(setting.min_support, setting.min_confidence, &ids);
    rules.reserve(ids.size());
    for (RuleId id : ids) rules.push_back(catalog_.rule(id));
    return rules;
  }
  // Static index cannot serve other windows: mine from scratch.
  DctarBaseline scratch(data_, max_itemset_size_);
  for (const MinedRule& r : scratch.MineWindow(w, setting)) {
    rules.push_back(Rule{r.antecedent, r.consequent});
  }
  return rules;
}

std::vector<std::vector<TrajectoryPoint>> ParasBaseline::TrajectoryQuery(
    WindowId anchor, const ParameterSetting& setting,
    const std::vector<WindowId>& horizon) const {
  TARA_CHECK(data_ != nullptr) << "Build first";
  const std::vector<Rule> rules = MineWindow(anchor, setting);
  DctarBaseline scratch(data_, max_itemset_size_);
  std::vector<std::vector<TrajectoryPoint>> trajectories;
  trajectories.reserve(rules.size());
  for (const Rule& rule : rules) {
    std::vector<TrajectoryPoint> trajectory;
    trajectory.reserve(horizon.size());
    for (WindowId w : horizon) {
      trajectory.push_back(scratch.EvaluateRule(rule, w));
    }
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

RegionInfo ParasBaseline::RecommendRegion(
    const ParameterSetting& setting) const {
  return index_.Locate(setting.min_support, setting.min_confidence);
}

}  // namespace tara
