#ifndef TARA_BASELINES_PARAS_BASELINE_H_
#define TARA_BASELINES_PARAS_BASELINE_H_

#include <vector>

#include "baselines/dctar.h"
#include "core/rule_catalog.h"
#include "core/stable_region_index.h"
#include "core/tara_engine.h"
#include "txdb/evolving_database.h"

namespace tara {

/// PARAS baseline (Section 2.5.2, after [66]): a parameter-space index over
/// *static* data. It pregenerates itemsets and rules for the newest window
/// only and indexes them in a stable-region structure; requests against
/// that window are as fast as TARA's, but time is not a dimension — any
/// request touching other windows falls back to mining from scratch
/// (delegated to a DCTAR-style path), and each new arriving batch forces a
/// full index rebuild.
class ParasBaseline {
 public:
  struct BuildStats {
    double seconds = 0;
    size_t rule_count = 0;
  };

  ParasBaseline(double min_support_floor, double min_confidence_floor,
                uint32_t max_itemset_size)
      : min_support_floor_(min_support_floor),
        min_confidence_floor_(min_confidence_floor),
        max_itemset_size_(max_itemset_size) {}

  /// Builds the index over the newest window of `data`. `data` must outlive
  /// the baseline (scratch fallbacks scan it).
  BuildStats Build(const EvolvingDatabase* data);

  WindowId indexed_window() const { return indexed_window_; }

  /// Rules of window `w` under `setting`: index lookup if `w` is the
  /// newest window, scratch mining otherwise.
  std::vector<Rule> MineWindow(WindowId w,
                               const ParameterSetting& setting) const;

  /// Q1 equivalent: index lookup on the anchor if possible, raw-scan
  /// evaluation over the horizon (PARAS has no temporal archive).
  std::vector<std::vector<TrajectoryPoint>> TrajectoryQuery(
      WindowId anchor, const ParameterSetting& setting,
      const std::vector<WindowId>& horizon) const;

  /// Q3 on the indexed window only — PARAS supports region queries there.
  RegionInfo RecommendRegion(const ParameterSetting& setting) const;

 private:
  double min_support_floor_;
  double min_confidence_floor_;
  uint32_t max_itemset_size_;

  const EvolvingDatabase* data_ = nullptr;
  WindowId indexed_window_ = 0;
  RuleCatalog catalog_;
  WindowIndex index_;
};

}  // namespace tara

#endif  // TARA_BASELINES_PARAS_BASELINE_H_
