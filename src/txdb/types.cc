#include "txdb/types.h"

#include <algorithm>

namespace tara {

void Canonicalize(Itemset* items) {
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
}

bool IsSubsetOf(const Itemset& needle, const Itemset& haystack) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

Itemset Union(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Itemset Intersection(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

Itemset Difference(const Itemset& a, const Itemset& b) {
  Itemset out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace tara
