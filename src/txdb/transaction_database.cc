#include "txdb/transaction_database.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace tara {

void TransactionDatabase::Append(Timestamp time, Itemset items) {
  TARA_CHECK(transactions_.empty() || transactions_.back().time <= time)
      << "transactions must be appended in timestamp order";
  Canonicalize(&items);
  if (!items.empty()) {
    item_bound_ = std::max(item_bound_, static_cast<ItemId>(items.back() + 1));
  }
  transactions_.push_back(Transaction{time, std::move(items)});
}

size_t TransactionDatabase::distinct_item_count() const {
  std::unordered_set<ItemId> seen;
  for (const Transaction& t : transactions_) {
    seen.insert(t.items.begin(), t.items.end());
  }
  return seen.size();
}

double TransactionDatabase::average_length() const {
  if (transactions_.empty()) return 0.0;
  size_t total = 0;
  for (const Transaction& t : transactions_) total += t.items.size();
  return static_cast<double>(total) / static_cast<double>(size());
}

size_t TransactionDatabase::CountContaining(const Itemset& query, size_t begin,
                                            size_t end) const {
  TARA_DCHECK(begin <= end && end <= size());
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    if (IsSubsetOf(query, transactions_[i].items)) ++count;
  }
  return count;
}

size_t TransactionDatabase::LowerBound(Timestamp t) const {
  return std::lower_bound(transactions_.begin(), transactions_.end(), t,
                          [](const Transaction& tx, Timestamp ts) {
                            return tx.time < ts;
                          }) -
         transactions_.begin();
}

size_t TransactionDatabase::UpperBound(Timestamp t) const {
  return std::upper_bound(transactions_.begin(), transactions_.end(), t,
                          [](Timestamp ts, const Transaction& tx) {
                            return ts < tx.time;
                          }) -
         transactions_.begin();
}

}  // namespace tara
