#include "txdb/io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace tara {

void WriteDatabase(const TransactionDatabase& db, std::ostream* out) {
  for (const Transaction& t : db.transactions()) {
    *out << t.time;
    for (ItemId item : t.items) *out << ' ' << item;
    *out << '\n';
  }
}

TransactionDatabase ReadDatabase(std::istream* in) {
  TransactionDatabase db;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    Timestamp time;
    TARA_CHECK(static_cast<bool>(fields >> time)) << "bad timestamp: " << line;
    Itemset items;
    ItemId item;
    while (fields >> item) items.push_back(item);
    db.Append(time, std::move(items));
  }
  return db;
}

std::string DatabaseToString(const TransactionDatabase& db) {
  std::ostringstream out;
  WriteDatabase(db, &out);
  return out.str();
}

TransactionDatabase DatabaseFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadDatabase(&in);
}

}  // namespace tara
