#ifndef TARA_TXDB_IO_H_
#define TARA_TXDB_IO_H_

#include <iosfwd>
#include <string>

#include "txdb/transaction_database.h"

namespace tara {

/// Writes `db` in the classic FIMI text format extended with a leading
/// timestamp: one transaction per line, `time item item ...`.
void WriteDatabase(const TransactionDatabase& db, std::ostream* out);

/// Parses the format written by WriteDatabase. Aborts on malformed input.
TransactionDatabase ReadDatabase(std::istream* in);

/// Convenience: round-trips through a string (used by tests and examples).
std::string DatabaseToString(const TransactionDatabase& db);
TransactionDatabase DatabaseFromString(const std::string& text);

}  // namespace tara

#endif  // TARA_TXDB_IO_H_
