#include "txdb/evolving_database.h"

#include "common/logging.h"

namespace tara {

WindowId EvolvingDatabase::AppendBatch(const std::vector<Transaction>& batch) {
  TARA_CHECK(!batch.empty()) << "empty batch";
  WindowInfo info;
  info.begin = db_.size();
  info.start_time = batch.front().time;
  info.end_time = batch.back().time;
  for (const Transaction& t : batch) db_.Append(t.time, t.items);
  info.end = db_.size();
  windows_.push_back(info);
  return static_cast<WindowId>(windows_.size() - 1);
}

EvolvingDatabase EvolvingDatabase::PartitionIntoBatches(
    const TransactionDatabase& db, uint32_t k) {
  TARA_CHECK(k > 0 && db.size() >= k) << "need at least one tx per window";
  EvolvingDatabase out;
  const size_t per = db.size() / k;
  size_t begin = 0;
  for (uint32_t i = 0; i < k; ++i) {
    const size_t end = (i + 1 == k) ? db.size() : begin + per;
    std::vector<Transaction> batch(db.transactions().begin() + begin,
                                   db.transactions().begin() + end);
    out.AppendBatch(batch);
    begin = end;
  }
  return out;
}

EvolvingDatabase EvolvingDatabase::PartitionByDuration(
    const TransactionDatabase& db, Timestamp w) {
  TARA_CHECK(w > 0 && !db.empty());
  EvolvingDatabase out;
  const Timestamp origin = db[0].time;
  std::vector<Transaction> batch;
  Timestamp window_end = origin + w;  // exclusive
  for (const Transaction& t : db.transactions()) {
    while (t.time >= window_end) {
      if (!batch.empty()) {
        out.AppendBatch(batch);
        batch.clear();
      } else {
        // Preserve empty window alignment with a placeholder-free approach:
        // synthesize an empty slice directly.
        WindowInfo info;
        info.begin = out.db_.size();
        info.end = out.db_.size();
        info.start_time = window_end - w;
        info.end_time = window_end - 1;
        out.windows_.push_back(info);
      }
      window_end += w;
    }
    batch.push_back(t);
  }
  if (!batch.empty()) out.AppendBatch(batch);
  return out;
}

const WindowInfo& EvolvingDatabase::window(WindowId id) const {
  TARA_CHECK_LT(id, windows_.size()) << "bad window id";
  return windows_[id];
}

size_t EvolvingDatabase::CountContaining(const Itemset& query,
                                         WindowId id) const {
  const WindowInfo& w = window(id);
  return db_.CountContaining(query, w.begin, w.end);
}

size_t EvolvingDatabase::CountContaining(
    const Itemset& query, const std::vector<WindowId>& ids) const {
  size_t total = 0;
  for (WindowId id : ids) total += CountContaining(query, id);
  return total;
}

}  // namespace tara
