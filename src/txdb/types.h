#ifndef TARA_TXDB_TYPES_H_
#define TARA_TXDB_TYPES_H_

#include <cstdint>
#include <vector>

namespace tara {

/// Dense integer identifier of an item (product, drug, ADR, word...).
using ItemId = uint32_t;

/// Timestamp of a transaction. Units are workload-defined (the paper's
/// time axis is abstract); windowing only requires a total order.
using Timestamp = int64_t;

/// A sorted, duplicate-free set of items. Canonical form is maintained by
/// the construction helpers below; all mining code assumes it.
using Itemset = std::vector<ItemId>;

/// Sorts and deduplicates `items` in place, producing canonical form.
void Canonicalize(Itemset* items);

/// True if `needle` ⊆ `haystack`. Both must be canonical.
bool IsSubsetOf(const Itemset& needle, const Itemset& haystack);

/// Set union of two canonical itemsets, in canonical form.
Itemset Union(const Itemset& a, const Itemset& b);

/// Set intersection of two canonical itemsets, in canonical form.
Itemset Intersection(const Itemset& a, const Itemset& b);

/// Set difference a \ b of two canonical itemsets, in canonical form.
Itemset Difference(const Itemset& a, const Itemset& b);

}  // namespace tara

#endif  // TARA_TXDB_TYPES_H_
