#ifndef TARA_TXDB_TRANSACTION_DATABASE_H_
#define TARA_TXDB_TRANSACTION_DATABASE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "txdb/types.h"

namespace tara {

/// One timestamped transaction: the items observed together at `time`
/// (Definition 1's d_i with d_i.time). `items` is canonical.
struct Transaction {
  Timestamp time = 0;
  Itemset items;
};

/// An in-memory timestamped transaction database D = {d_1, ..., d_m}.
///
/// Transactions are kept in non-decreasing timestamp order; Append enforces
/// this so that windowing (EvolvingDatabase) can slice by index ranges.
class TransactionDatabase {
 public:
  TransactionDatabase() = default;

  /// Appends a transaction. `items` is canonicalized; the timestamp must be
  /// >= the last appended timestamp.
  void Append(Timestamp time, Itemset items);

  /// Number of transactions.
  size_t size() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  const Transaction& operator[](size_t i) const { return transactions_[i]; }

  const std::vector<Transaction>& transactions() const {
    return transactions_;
  }

  /// Largest item id observed plus one (0 when empty). Useful for sizing
  /// per-item arrays in the miners.
  ItemId item_bound() const { return item_bound_; }

  /// Number of distinct items observed.
  size_t distinct_item_count() const;

  /// Mean transaction length.
  double average_length() const;

  /// Count of transactions (in [begin, end) index range) containing `query`.
  /// This is the F(X, D, [ti, tj]) operator of the paper realized over an
  /// index slice; a linear scan used by tests and the DCTAR baseline.
  size_t CountContaining(const Itemset& query, size_t begin, size_t end) const;

  /// CountContaining over all transactions.
  size_t CountContaining(const Itemset& query) const {
    return CountContaining(query, 0, size());
  }

  /// Index of the first transaction with time >= t (lower bound).
  size_t LowerBound(Timestamp t) const;

  /// Index of the first transaction with time > t (upper bound).
  size_t UpperBound(Timestamp t) const;

 private:
  std::vector<Transaction> transactions_;
  ItemId item_bound_ = 0;
};

}  // namespace tara

#endif  // TARA_TXDB_TRANSACTION_DATABASE_H_
