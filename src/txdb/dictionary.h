#ifndef TARA_TXDB_DICTIONARY_H_
#define TARA_TXDB_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "txdb/types.h"

namespace tara {

/// Bidirectional mapping between item names and dense ItemIds.
///
/// Ids are assigned in first-seen order starting from 0, so a dictionary
/// built deterministically yields deterministic ids.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `name`, interning it if new.
  ItemId Intern(const std::string& name);

  /// Returns the id for `name`, or `kNotFound` if it was never interned.
  ItemId Find(const std::string& name) const;

  /// Returns the name for `id`. `id` must be valid.
  const std::string& Name(ItemId id) const;

  /// Number of distinct items interned.
  size_t size() const { return names_.size(); }

  static constexpr ItemId kNotFound = static_cast<ItemId>(-1);

 private:
  std::unordered_map<std::string, ItemId> ids_;
  std::vector<std::string> names_;
};

}  // namespace tara

#endif  // TARA_TXDB_DICTIONARY_H_
