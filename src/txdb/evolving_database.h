#ifndef TARA_TXDB_EVOLVING_DATABASE_H_
#define TARA_TXDB_EVOLVING_DATABASE_H_

#include <cstdint>
#include <vector>

#include "txdb/transaction_database.h"
#include "txdb/types.h"

namespace tara {

/// Identifier of a tumbling window (time period T_i of the paper).
using WindowId = uint32_t;

/// Index slice of the underlying database covered by one window, plus the
/// closed time period it represents.
struct WindowInfo {
  size_t begin = 0;  ///< first transaction index (inclusive)
  size_t end = 0;    ///< one past last transaction index
  Timestamp start_time = 0;
  Timestamp end_time = 0;

  size_t size() const { return end - begin; }
};

/// An evolving dataset: a transaction database partitioned into disjoint,
/// consecutive tumbling windows (Section 2.4.1). New batches may arrive over
/// time; each arrival extends the window list without touching old windows,
/// which is the contract the incremental (iPARAS-style) index build relies
/// on.
class EvolvingDatabase {
 public:
  EvolvingDatabase() = default;

  /// Appends one batch of transactions as a new window. Transactions within
  /// the batch and across batches must be in timestamp order.
  WindowId AppendBatch(const std::vector<Transaction>& batch);

  /// Splits `db` into `k` windows of (near-)equal transaction counts — the
  /// partitioning the paper applies to its static datasets. Later windows
  /// absorb the remainder.
  static EvolvingDatabase PartitionIntoBatches(const TransactionDatabase& db,
                                               uint32_t k);

  /// Splits `db` into windows of fixed time duration `w` (Figure 3's
  /// tumbling window model). Empty windows are preserved so window ids map
  /// linearly to time.
  static EvolvingDatabase PartitionByDuration(const TransactionDatabase& db,
                                              Timestamp w);

  uint32_t window_count() const {
    return static_cast<uint32_t>(windows_.size());
  }
  const WindowInfo& window(WindowId id) const;
  const TransactionDatabase& database() const { return db_; }

  /// Count of transactions within window `id` that contain `query`.
  size_t CountContaining(const Itemset& query, WindowId id) const;

  /// Count of transactions within every window in `ids` that contain
  /// `query`.
  size_t CountContaining(const Itemset& query,
                         const std::vector<WindowId>& ids) const;

 private:
  TransactionDatabase db_;
  std::vector<WindowInfo> windows_;
};

}  // namespace tara

#endif  // TARA_TXDB_EVOLVING_DATABASE_H_
