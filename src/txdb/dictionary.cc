#include "txdb/dictionary.h"

#include "common/logging.h"

namespace tara {

ItemId Dictionary::Intern(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, names_.size());
  if (inserted) names_.push_back(name);
  return it->second;
}

ItemId Dictionary::Find(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& Dictionary::Name(ItemId id) const {
  TARA_CHECK_LT(id, names_.size()) << "unknown item id";
  return names_[id];
}

}  // namespace tara
